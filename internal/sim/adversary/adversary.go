// Package adversary is the kernel's adversarial environment engine. The
// paper's results are quantified over environments — which processes are up
// and how links behave — and the base kernel ships only the friendly half of
// that space: monotone crash patterns and networks that always deliver. This
// package supplies the hostile half as first-class, fully seeded adversary
// objects:
//
//   - FaultSchedule generalizes model.FailurePattern to up/down INTERVALS:
//     processes crash and rejoin (churn). It implements model.FaultModel, so
//     a kernel given one via sim.Options.Faults suspends a process for each
//     down interval (dropping everything sent to it) and restarts it at the
//     interval's end with fresh automaton state — Init re-runs, nothing
//     survives. Churn builds randomized schedules from a seed.
//
//   - Lossy is a sim.NetworkModel that DROPS messages: every directed link
//     gets its own drop probability derived from the seed (mean Drop), with
//     optional burst losses that take out runs of consecutive messages on a
//     link. A raw Lossy network violates the paper's §2 eventual-delivery
//     assumption on purpose — experiments use it to show eventual consistency
//     failing to converge — and pairing it with internal/retransmit.Wrap
//     restores eventual delivery end-to-end, making the loss rate a
//     sweepable parameter instead of a broken assumption.
//
//   - AdversarialScheduler is a sim.NetworkModel that chooses each message's
//     delay to MAXIMIZE replica divergence rather than drawing i.i.d.: a
//     greedy lookahead scores a bounded menu of candidate delays and picks
//     the one that spreads arrival times across receivers furthest apart,
//     while a rotating victim is starved with maximal delays. Every delay is
//     still finite (bounded by Max), so the scheduler is an admissible §2
//     environment: convergence must still happen, just as late as a greedy
//     adversary can push it.
//
//   - LeaderStarver is the PROTOCOL-AWARE scheduler the blind rotation's E12
//     honesty note asked for: it reads the run's current Ω output through
//     the kernel's leadership-observation hook (sim.LeaderAware — the kernel
//     hands any aware model a pure query answering from the same per-segment
//     fd.Cached the automata's own detector queries hit) and pins EVERY link
//     touching the current leader at the admissibility bound, the leader's
//     own self-delivery loop included. Pre-stabilization views may disagree,
//     so the victim is anchored at the lowest-id process's view; links the
//     victim rule spares get the same greedy spread as the blind scheduler.
//     E13 in internal/bench measures the gap: on the workload where the
//     blind rotation converges EARLIER than i.i.d. noise, leader-awareness
//     costs roughly an order of magnitude over both.
//
//   - Composite bundles a (possibly sim.ComposeNetworks-layered) link model
//     and a fault schedule into ONE registered preset name, so a hostile
//     environment — "churn-lossy" (churn under ~15% loss), "hostile"
//     (leader starvation over ~10% loss over churn) — is a single object
//     usable from ecsim -net, the examples, and the experiment tables.
//     Fault halves compose through model.MergeFaults (down = down in any
//     component, restarts recomputed against the merged liveness).
//
// Determinism contract: all adversaries are deterministic functions of their
// configuration and seed. FaultSchedule is immutable after construction and
// safe to share across concurrent kernels; the network models follow the
// sim.NetworkModel contract (all randomness from Reset's seed, one Delay
// call per message in send order), and leadership observations are pure
// queries of the deterministic detector history — so a run under any of
// them, composites included, is bit-for-bit reproducible. The determinism
// and parallel/serial identity regression tests in this package pin that
// across seeds for every registered preset.
//
// The package registers environment presets ("lossy", "lossy-burst",
// "adversarial", "leader-starve", "churn-fast", "churn-slow", "churn-lossy",
// "hostile") into the sim preset registry from init, so ecsim -net and the
// examples can name them.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// interval is one down period [start, end). end == model.TimeNever means the
// process never comes back (a permanent crash).
type interval struct {
	start, end model.Time
}

// FaultSchedule maps each process to a set of down intervals — the up/down
// generalization of the paper's monotone F. A FailurePattern is the special
// case in which every down interval extends to infinity.
//
// Build one with NewFaultSchedule + Down/Crash calls, or generate churn with
// Churn. Schedules normalize on construction: intervals per process are
// sorted and overlaps merged, so queries are simple scans. After handing a
// schedule to a kernel it must not be mutated (see model.FaultModel).
type FaultSchedule struct {
	n    int
	down map[model.ProcID][]interval
}

var _ model.FaultModel = (*FaultSchedule)(nil)

// NewFaultSchedule returns the all-up schedule over n processes.
func NewFaultSchedule(n int) *FaultSchedule {
	if n < 2 {
		panic("adversary: a system needs at least 2 processes (n >= 2)")
	}
	return &FaultSchedule{n: n, down: make(map[model.ProcID][]interval, n)}
}

// N returns the number of processes in the system.
func (s *FaultSchedule) N() int { return s.n }

// Down records that p is down during [from, to). to == model.TimeNever (or
// any negative value) means p never restarts — a permanent crash. Overlapping
// and adjacent intervals merge.
func (s *FaultSchedule) Down(p model.ProcID, from, to model.Time) {
	if p < 1 || int(p) > s.n {
		panic(fmt.Sprintf("adversary: down interval for unknown process %v (n=%d)", p, s.n))
	}
	if from < 0 {
		panic("adversary: down interval must start at >= 0")
	}
	if to >= 0 && to <= from {
		panic(fmt.Sprintf("adversary: empty down interval [%d, %d)", from, to))
	}
	if to < 0 {
		to = model.TimeNever
	}
	s.down[p] = mergeIntervals(append(s.down[p], interval{from, to}))
}

// Crash records a permanent crash of p at t — the monotone special case.
func (s *FaultSchedule) Crash(p model.ProcID, t model.Time) { s.Down(p, t, model.TimeNever) }

// mergeIntervals sorts by start and merges overlapping or touching intervals.
func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.end == model.TimeNever || iv.start <= last.end {
				// Overlapping or adjacent: extend the previous interval.
				if last.end != model.TimeNever && (iv.end == model.TimeNever || iv.end > last.end) {
					last.end = iv.end
				}
				continue
			}
		}
		out = append(out, iv)
	}
	return out
}

// Up implements model.FaultModel.
func (s *FaultSchedule) Up(p model.ProcID, t model.Time) bool {
	for _, iv := range s.down[p] {
		if t < iv.start {
			return true // intervals are sorted; no later one can contain t
		}
		if iv.end == model.TimeNever || t < iv.end {
			return false
		}
	}
	return true
}

// Restarts implements model.FaultModel: the end of every finite down
// interval, strictly increasing.
func (s *FaultSchedule) Restarts(p model.ProcID) []model.Time {
	var out []model.Time
	for _, iv := range s.down[p] {
		if iv.end != model.TimeNever {
			out = append(out, iv.end)
		}
	}
	return out
}

// EventuallyUp reports whether p is up from some time on — the churn
// analogue of "correct": p has no permanent down interval.
func (s *FaultSchedule) EventuallyUp(p model.ProcID) bool {
	ivs := s.down[p]
	return len(ivs) == 0 || ivs[len(ivs)-1].end != model.TimeNever
}

// QuietAfter returns the earliest time from which every process is
// permanently in its final state (eventually-up processes up, crashed
// processes down) — the end of all churn. Convergence measurements use it as
// the analogue of a partition's heal time.
func (s *FaultSchedule) QuietAfter() model.Time {
	var q model.Time
	for _, ivs := range s.down {
		for _, iv := range ivs {
			t := iv.end
			if t == model.TimeNever {
				t = iv.start
			}
			if t > q {
				q = t
			}
		}
	}
	return q
}

// Boundaries returns every instant at which some process's up/down state
// changes, sorted and deduplicated. Failure detectors built over a schedule
// (fd.NewOmegaUp) use it to segment their histories for fd.Cached.
func (s *FaultSchedule) Boundaries() []model.Time {
	set := map[model.Time]bool{}
	for _, ivs := range s.down {
		for _, iv := range ivs {
			set[iv.start] = true
			if iv.end != model.TimeNever {
				set[iv.end] = true
			}
		}
	}
	out := make([]model.Time, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pattern projects the schedule onto the paper's monotone model: a process
// with a permanent down interval crashes at that interval's start; churning
// (eventually-up) processes are correct. Detector constructors that take a
// FailurePattern consume this projection.
func (s *FaultSchedule) Pattern() *model.FailurePattern {
	fp := model.NewFailurePattern(s.n)
	for p, ivs := range s.down {
		if n := len(ivs); n > 0 && ivs[n-1].end == model.TimeNever {
			fp.Crash(p, ivs[n-1].start)
		}
	}
	return fp
}

// String renders the schedule, e.g. "FS{n=3, p2 down [100,200) [500,∞)}".
func (s *FaultSchedule) String() string {
	out := fmt.Sprintf("FS{n=%d", s.n)
	for _, p := range model.Procs(s.n) {
		ivs := s.down[p]
		if len(ivs) == 0 {
			continue
		}
		out += fmt.Sprintf(", %v down", p)
		for _, iv := range ivs {
			if iv.end == model.TimeNever {
				out += fmt.Sprintf(" [%d,∞)", iv.start)
			} else {
				out += fmt.Sprintf(" [%d,%d)", iv.start, iv.end)
			}
		}
	}
	return out + "}"
}

// ChurnConfig parameterizes the Churn schedule generator.
type ChurnConfig struct {
	// Seed drives all interval draws; same seed, same schedule.
	Seed int64
	// MeanUp and MeanDown are the mean lengths of up and down intervals.
	// Actual lengths are drawn uniformly from [mean/2, 3*mean/2].
	// Defaults: 800 and 200.
	MeanUp, MeanDown model.Time
	// Until stops the churn: no down interval starts at or after it, so every
	// process is permanently up from shortly after Until — the quiet period
	// convergence is measured against. Default: 4000.
	Until model.Time
	// Spare lists processes never taken down (e.g. a leader that must satisfy
	// an Ω history's correctness requirement). Empty spares no one.
	Spare []model.ProcID
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.MeanUp <= 0 {
		c.MeanUp = 800
	}
	if c.MeanDown <= 0 {
		c.MeanDown = 200
	}
	if c.Until <= 0 {
		c.Until = 4000
	}
	return c
}

// Churn generates a seeded random churn schedule over n processes: each
// non-spared process alternates up intervals of mean MeanUp and down
// intervals of mean MeanDown until the churn window closes at Until. Every
// process is eventually up (churn models restarts, not deaths), so all n
// count as correct in the eventual sense and EC convergence is reachable in
// every generated schedule.
func Churn(n int, cfg ChurnConfig) *FaultSchedule {
	cfg = cfg.withDefaults()
	s := NewFaultSchedule(n)
	spared := make(map[model.ProcID]bool, len(cfg.Spare))
	for _, p := range cfg.Spare {
		spared[p] = true
	}
	for _, p := range model.Procs(n) {
		if spared[p] {
			continue
		}
		// Independent stream per process so schedules don't shift wholesale
		// when one process's draw count changes.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p)*7919))
		draw := func(mean model.Time) model.Time {
			return mean/2 + model.Time(rng.Int63n(int64(mean)+1))
		}
		// First down onset is a full up interval in, so time 0 starts up.
		t := draw(cfg.MeanUp)
		for t < cfg.Until {
			d := draw(cfg.MeanDown)
			s.Down(p, t, t+d)
			t += d + draw(cfg.MeanUp)
		}
	}
	return s
}
