package adversary

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// pingAuto is a small protocol that keeps traffic flowing: inputs broadcast,
// every received ping is echoed back to the sender once, and every delivery
// is reported as an output (so traces see protocol state).
type pingAuto struct {
	self model.ProcID
	seen map[string]bool
}

func (a *pingAuto) Init(model.Context) { a.seen = map[string]bool{} }

func (a *pingAuto) Tick(model.Context) {}

func (a *pingAuto) Recv(ctx model.Context, from model.ProcID, payload any) {
	s := payload.(string)
	ctx.Output(fmt.Sprintf("got %s from %v", s, from))
	if !a.seen[s] {
		a.seen[s] = true
		if len(s) < 12 { // bounded echo depth keeps runs finite
			ctx.Send(from, s+"'")
		}
	}
}

func (a *pingAuto) Input(ctx model.Context, in any) { ctx.Broadcast(in.(string)) }

func pingFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return &pingAuto{self: p} }
}

// traceObs records the full observable event sequence as strings.
type traceObs struct{ events []string }

func (o *traceObs) OnSend(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("S %d #%d %v->%v %v", t, m.ID, m.From, m.To, m.Payload))
}

func (o *traceObs) OnDeliver(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("D %d #%d %v->%v %v", t, m.ID, m.From, m.To, m.Payload))
}

func (o *traceObs) OnOutput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("O %d %v %v", t, p, v))
}

func (o *traceObs) OnInput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("I %d %v %v", t, p, v))
}

// runTrace executes one 4-process run under the given environment and
// returns its full event sequence.
func runTrace(seed int64, net sim.NetworkFactory, faults model.FaultModel) []string {
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaStable(fp, 1)
	obs := &traceObs{}
	k := sim.New(fp, det, pingFactory(), sim.Options{Seed: seed, Network: net, Faults: faults})
	k.SetObserver(obs)
	k.ScheduleInput(1, 40, "a")
	k.ScheduleInput(2, 120, "b")
	k.ScheduleInput(3, 700, "c")
	k.Run(5000)
	return obs.events
}

// TestAdversaryTraceDeterminism is the package's determinism contract at
// trace granularity, across 20 seeds per adversary: same seed, same
// environment ⇒ byte-identical event sequence.
func TestAdversaryTraceDeterminism(t *testing.T) {
	cases := map[string]func(seed int64) ([]string, []string){
		"lossy": func(seed int64) ([]string, []string) {
			mk := func() []string {
				return runTrace(seed, func() sim.NetworkModel { return NewLossy(0.2) }, nil)
			}
			return mk(), mk()
		},
		"lossy-burst": func(seed int64) ([]string, []string) {
			mk := func() []string {
				return runTrace(seed, func() sim.NetworkModel { return &Lossy{Drop: 0.2, Burst: 4} }, nil)
			}
			return mk(), mk()
		},
		"churn": func(seed int64) ([]string, []string) {
			mk := func() []string {
				fs := Churn(4, ChurnConfig{Seed: seed, MeanUp: 400, MeanDown: 150, Until: 3000, Spare: []model.ProcID{1}})
				return runTrace(seed, nil, fs)
			}
			return mk(), mk()
		},
		"adversarial": func(seed int64) ([]string, []string) {
			mk := func() []string {
				return runTrace(seed, func() sim.NetworkModel { return NewAdversarialScheduler() }, nil)
			}
			return mk(), mk()
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				a, b := mk(seed)
				if len(a) == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				if len(a) != len(b) {
					t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d: traces diverge at event %d:\n  run1: %s\n  run2: %s", seed, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestAdversarySeedSensitivity: different seeds must produce different
// schedules under each randomized adversary.
func TestAdversarySeedSensitivity(t *testing.T) {
	mks := map[string]func(seed int64) []string{
		"lossy": func(seed int64) []string {
			return runTrace(seed, func() sim.NetworkModel { return NewLossy(0.2) }, nil)
		},
		"churn": func(seed int64) []string {
			fs := Churn(4, ChurnConfig{Seed: seed, MeanUp: 400, MeanDown: 150, Until: 3000})
			return runTrace(1, nil, fs)
		},
		"adversarial": func(seed int64) []string {
			return runTrace(seed, func() sim.NetworkModel { return NewAdversarialScheduler() }, nil)
		},
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			base := mk(1)
			for seed := int64(2); seed <= 6; seed++ {
				got := mk(seed)
				if len(got) != len(base) {
					return
				}
				for i := range got {
					if got[i] != base[i] {
						return
					}
				}
			}
			t.Error("five different seeds produced identical traces — PRNG unused?")
		})
	}
}

func TestFaultSchedule(t *testing.T) {
	s := NewFaultSchedule(3)
	s.Down(2, 100, 200)
	s.Down(2, 150, 250) // overlaps: merges to [100, 250)
	s.Down(2, 400, 500)
	s.Crash(3, 600)

	for _, tc := range []struct {
		p    model.ProcID
		t    model.Time
		want bool
	}{
		{1, 0, true}, {1, 1000, true},
		{2, 99, true}, {2, 100, false}, {2, 249, false}, {2, 250, true},
		{2, 400, false}, {2, 500, true},
		{3, 599, true}, {3, 600, false}, {3, 10_000, false},
	} {
		if got := s.Up(tc.p, tc.t); got != tc.want {
			t.Errorf("Up(%v, %d) = %v, want %v", tc.p, tc.t, got, tc.want)
		}
	}
	if got := s.Restarts(2); len(got) != 2 || got[0] != 250 || got[1] != 500 {
		t.Errorf("Restarts(p2) = %v, want [250 500]", got)
	}
	if got := s.Restarts(3); got != nil {
		t.Errorf("Restarts(p3) = %v, want nil (permanent crash)", got)
	}
	if !s.EventuallyUp(2) || s.EventuallyUp(3) || !s.EventuallyUp(1) {
		t.Error("EventuallyUp: want p1, p2 yes; p3 no")
	}
	if got := s.QuietAfter(); got != 600 {
		t.Errorf("QuietAfter = %d, want 600 (p3's final crash)", got)
	}
	if got := s.Boundaries(); len(got) != 5 { // 100, 250, 400, 500, 600
		t.Errorf("Boundaries = %v, want 5 instants", got)
	}
	fp := s.Pattern()
	if !fp.IsCorrect(2) || fp.IsCorrect(3) || fp.CrashTime(3) != 600 {
		t.Errorf("Pattern projection wrong: %v", fp)
	}
}

func TestChurnGenerator(t *testing.T) {
	cfg := ChurnConfig{Seed: 9, MeanUp: 400, MeanDown: 100, Until: 2000, Spare: []model.ProcID{1}}
	a, b := Churn(5, cfg), Churn(5, cfg)
	if a.String() != b.String() {
		t.Fatalf("same config must generate the same schedule:\n%v\n%v", a, b)
	}
	if len(a.down[1]) != 0 {
		t.Errorf("spared p1 has down intervals: %v", a)
	}
	churned := 0
	for _, p := range model.Procs(5) {
		if !a.EventuallyUp(p) {
			t.Errorf("churn must leave %v eventually up", p)
		}
		if len(a.down[p]) > 0 {
			churned++
			for _, iv := range a.down[p] {
				if iv.start >= cfg.Until {
					t.Errorf("%v down interval starts at %d, after Until=%d", p, iv.start, cfg.Until)
				}
			}
		}
	}
	if churned == 0 {
		t.Error("no process churned")
	}
}

func TestLossyDropsAndSelfLinks(t *testing.T) {
	l := &Lossy{Drop: 0.3}
	l.Reset(5)
	losses := 0
	for i := 0; i < 2000; i++ {
		if _, ok := l.Delay(1, 2, model.Time(i)); !ok {
			losses++
		}
		if _, ok := l.Delay(3, 3, model.Time(i)); !ok {
			t.Fatal("self-link message dropped")
		}
	}
	if losses == 0 {
		t.Error("no losses at Drop=0.3")
	}
	// Per-link mean is Drop, the (1,2) link's own rate is in [0, 2*Drop]:
	// just require the rate to be strictly between nothing and everything.
	if losses > 1800 {
		t.Errorf("%d/2000 losses: link rate should stay below 2*Drop", losses)
	}
	if err := (&Lossy{Drop: 1.0}).Validate(4); err == nil {
		t.Error("Drop=1.0 must fail validation")
	}
}

func TestAdversarialSchedulerBoundsAndDelivery(t *testing.T) {
	a := NewAdversarialScheduler()
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	a.Reset(3)
	min, max, _, _ := a.params()
	for i := 0; i < 3000; i++ {
		from := model.ProcID(i%4 + 1)
		to := model.ProcID((i/4)%4 + 1)
		d, ok := a.Delay(from, to, model.Time(i))
		if !ok {
			t.Fatal("adversarial scheduler must deliver every message (admissible environment)")
		}
		if d < min || d > max {
			t.Fatalf("delay %d outside menu [%d, %d]", d, min, max)
		}
	}
}

// TestAdversarialSchedulerMaximizesSkew: what the adversary optimizes is
// divergence — the same broadcast reaching different replicas at maximally
// different times. Its arrival skew must beat i.i.d. delays drawn over the
// identical support, and traffic touching the rotating victim must sit at
// the admissibility bound.
func TestAdversarialSchedulerMaximizesSkew(t *testing.T) {
	skewOf := func(net sim.NetworkModel) model.Time {
		net.Reset(7)
		// 30 broadcast waves from varying senders: each wave is one Delay call
		// per recipient at the same send time, like the kernel's broadcast.
		var total model.Time
		for w := 0; w < 30; w++ {
			from := model.ProcID(w%4 + 1)
			sendTime := model.Time(40 * w)
			min, max := model.Time(1<<62), model.Time(0)
			for q := 1; q <= 4; q++ {
				if model.ProcID(q) == from {
					continue
				}
				d, ok := net.Delay(from, model.ProcID(q), sendTime)
				if !ok {
					t.Fatal("scheduler must deliver")
				}
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
			}
			total += max - min
		}
		return total
	}
	adv := NewAdversarialScheduler()
	if err := adv.Validate(4); err != nil {
		t.Fatal(err)
	}
	advSkew := skewOf(adv)
	iidSkew := skewOf(sim.NewUniform(1, 60))
	if advSkew <= iidSkew {
		t.Errorf("adversarial skew %d <= i.i.d. skew %d: the greedy schedule should spread arrivals further apart", advSkew, iidSkew)
	}

	// Victim starvation: inside the first window p1 is the victim, and every
	// message to or from it runs at the menu maximum.
	v := NewAdversarialScheduler()
	v.Explore = -1 // exploration off: starvation must be unconditional
	if err := v.Validate(4); err != nil {
		t.Fatal(err)
	}
	v.Reset(1)
	_, max, _, _ := v.params()
	if d, _ := v.Delay(2, 1, 10); d != max {
		t.Errorf("message to the victim delayed %d, want the bound %d", d, max)
	}
	if d, _ := v.Delay(1, 3, 10); d != max {
		t.Errorf("message from the victim delayed %d, want the bound %d", d, max)
	}
}
