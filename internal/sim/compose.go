package sim

import (
	"fmt"

	"repro/internal/model"
)

// ComposedNetwork stacks NetworkModels into one environment: a message
// traverses every layer in order, its delays ADD, and it is delivered only if
// EVERY layer delivers it. Layering a Lossy drop model over an adversarial
// delay scheduler, for example, yields an environment that both aims delays
// at the protocol and loses messages — the composite presets ("hostile",
// "churn-lossy") in internal/sim/adversary are built this way.
//
// Semantics, layer by layer:
//
//   - Delay: every layer is consulted for every message, in order, against
//     the ORIGINAL send time (each layer models an independent property of
//     the one physical link, not a store-and-forward hop). Consulting a layer
//     even after an earlier layer dropped the message keeps each layer's PRNG
//     stream independent of its neighbors' decisions, so adding a layer never
//     reshuffles another layer's schedule.
//
//   - Reset: each layer is re-seeded with a distinct value derived from the
//     run seed (splitmix-style), so two layers of the same type cannot shadow
//     each other's draws.
//
//   - Validate: every layer's own validator runs; the composite additionally
//     rejects an empty layer list.
//
//   - Leadership: the composite implements LeaderAware and forwards the
//     kernel's observation to every layer that wants one, so a protocol-aware
//     layer (adversary.LeaderStarver) stays protocol-aware inside a stack.
//
// Admissibility composes the way the layers do: the sum of finite delays is
// finite, so a stack of always-deliver models is still an admissible §2
// environment; one lossy layer makes the whole stack lossy (pair it with
// internal/retransmit, as the NetworkModel contract describes).
type ComposedNetwork struct {
	Layers []NetworkModel
}

var _ NetworkModel = (*ComposedNetwork)(nil)
var _ NetworkValidator = (*ComposedNetwork)(nil)
var _ LeaderAware = (*ComposedNetwork)(nil)

// ComposeNetworks stacks the given layers into one NetworkModel. A single
// layer is returned unwrapped.
func ComposeNetworks(layers ...NetworkModel) NetworkModel {
	if len(layers) == 1 {
		return layers[0]
	}
	return &ComposedNetwork{Layers: layers}
}

// Validate implements NetworkValidator.
func (c *ComposedNetwork) Validate(n int) error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("sim: ComposeNetworks of zero layers models no link at all")
	}
	for i, l := range c.Layers {
		if err := ValidateNetwork(l, n); err != nil {
			return fmt.Errorf("sim: composed layer %d: %w", i, err)
		}
	}
	return nil
}

// Reset implements NetworkModel: each layer gets its own seed stream derived
// from the run seed by layer position.
func (c *ComposedNetwork) Reset(seed int64) {
	for i, l := range c.Layers {
		l.Reset(deriveSeed(seed, i))
	}
}

// deriveSeed decorrelates per-layer seed streams with a splitmix64 step over
// (seed, layer index) — a pure function, so composites stay deterministic.
func deriveSeed(seed int64, layer int) int64 {
	if layer == 0 {
		return seed // the first layer keeps the run seed (single-layer parity)
	}
	x := uint64(seed) + uint64(layer)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// ObserveLeadership implements LeaderAware by forwarding to every layer that
// is itself leader-aware.
func (c *ComposedNetwork) ObserveLeadership(obs LeaderObservation) {
	for _, l := range c.Layers {
		if la, ok := l.(LeaderAware); ok {
			la.ObserveLeadership(obs)
		}
	}
}

// Delay implements NetworkModel: delays add, delivery requires unanimity.
func (c *ComposedNetwork) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	var total model.Time
	deliver := true
	for _, l := range c.Layers {
		d, ok := l.Delay(from, to, sendTime)
		if d > 0 {
			total += d
		}
		if !ok {
			deliver = false
		}
	}
	return total, deliver
}

