// Package sim provides a deterministic discrete-event simulator of the
// paper's asynchronous message-passing system (§2): n processes taking steps
// under a discrete global clock, reliable links with unbounded (but finite)
// message delays, crash failures injected from a failure pattern, and a
// failure-detector oracle queried at every step.
//
// Link behavior is pluggable: a NetworkModel decides every message's delay
// and delivery, making the environment — the paper's central parameter — a
// first-class object. Options.Network carries a NetworkFactory (not an
// instance): each kernel builds and seeds a private model, so one Options
// value is safe to share across sequential and concurrent kernels alike —
// the property the parallel sweep engine in internal/bench relies on. Three deterministic seeded models ship
// with the kernel: Uniform (the default: i.i.d. delays in [MinDelay,
// MaxDelay]), Partitioned (crash-free partitions that form and heal on a
// schedule, buffering cross-partition traffic until heal time so eventual
// delivery still holds), MultiPartitioned (its k-side generalization), and
// Jittery (asymmetric per-link latency classes with occasional spikes,
// modeling partial synchrony). Preset names common environments ("uniform",
// "partition", "jitter-spiky", ...); adversarial models — lossy links,
// divergence-maximizing schedulers — live in internal/sim/adversary and
// register their own presets. Models STACK through ComposeNetworks (delays
// add, delivery needs unanimity, per-layer seed streams), and a model that
// implements LeaderAware is handed a leadership observation by the kernel —
// a pure query for the Ω component of the run's detector history, served
// from the kernel's own fd.Cached — so protocol-aware adversaries
// (adversary.LeaderStarver) can aim at the current leader.
//
// The failure half of the environment is pluggable too: Options.Faults takes
// a model.FaultModel, generalizing the monotone crash pattern to up/down
// intervals (churn). A process whose down interval ends restarts with fresh
// automaton state (Init re-runs); everything sent to it while down is
// dropped. With Faults nil the kernel consumes the failure pattern itself —
// the monotone special case — through the same interface.
//
// Determinism: given the same seed, failure pattern, detector, network
// model, and automaton factory, a run is bit-for-bit reproducible. All
// scheduling choices are drawn from seeded PRNGs and all tie-breaks are
// explicit, which is what makes the property checkers in internal/trace and
// the experiment tables in internal/bench meaningful.
package sim

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
)

// Options configure a simulated run.
type Options struct {
	// Seed seeds the PRNG used for message delays (it is passed to the
	// network model's Reset).
	Seed int64
	// MinDelay and MaxDelay bound the link delay of every message, in clock
	// ticks, when Network is nil (the default Uniform model). Set them equal
	// for a fixed-delay network (used to measure latency in communication
	// steps). Defaults: 10 and 20. Ignored when Network is non-nil.
	MinDelay model.Time
	MaxDelay model.Time
	// Network is a FACTORY for the link-behavior engine: each kernel calls
	// it once at construction to obtain its own fresh NetworkModel, then
	// seeds that instance with Network().Reset(Seed). Nil selects
	// NewUniform(MinDelay, MaxDelay) — the kernel's historical behavior,
	// bit-for-bit. Because every kernel gets a private instance, one Options
	// value can be shared freely across sequential AND concurrent kernels;
	// the old aliasing hazard (two interleaved kernels re-seeding one shared
	// stateful model) is gone by construction.
	//
	// Migrating from the pre-factory API (Network NetworkModel): wrap the
	// model construction in a closure —
	//
	//	Options{Network: func() NetworkModel { return NewPartitioned(2, 500, 2000) }}
	//
	// or use PresetFactory("partition") for a named environment.
	Network NetworkFactory
	// Faults optionally generalizes the run's failure pattern to up/down
	// intervals (churn): when non-nil, it — not the FailurePattern passed to
	// New — decides which processes take steps and receive messages at each
	// instant. A process whose down interval ends RESTARTS: its automaton is
	// rebuilt from the factory (state reset) and re-runs Init; deliveries and
	// inputs that arrived while it was down are dropped. Nil keeps the
	// monotone crash semantics of the failure pattern (which itself implements
	// model.FaultModel), bit-for-bit.
	//
	// Unlike Network this is an instance, not a factory: FaultModel
	// implementations are immutable pure queries (see model.FaultModel), so
	// one value is safe to share across sequential and concurrent kernels.
	Faults model.FaultModel
	// TickInterval is the period of λ-steps (the paper's "local timeout").
	// Default: 5. Ticks of distinct processes are staggered by one tick each
	// so no two processes ever step at the same instant.
	TickInterval model.Time
	// MaxTime bounds the run; events scheduled after MaxTime do not execute.
	// Default: 100000.
	MaxTime model.Time
}

func (o Options) withDefaults() Options {
	if o.MinDelay == 0 && o.MaxDelay == 0 {
		o.MinDelay, o.MaxDelay = 10, 20
	}
	if o.MaxDelay < o.MinDelay {
		o.MaxDelay = o.MinDelay
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 5
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 100000
	}
	return o
}

// Message is a message in transit, as scheduled by the kernel.
type Message struct {
	// ID is the unique kernel-assigned message identifier (1-based).
	ID int64
	// From and To identify the link.
	From, To model.ProcID
	// Payload is the protocol-level content.
	Payload any
	// SentAt is the time of the sending step.
	SentAt model.Time
	// Depth is the causal hop depth: 1 for a message sent from an input or
	// λ step, depth(trigger)+1 for a message sent while processing another
	// message. Used to report latency in "communication steps".
	Depth int
	// CauseID is the ID of the message whose reception triggered the sending
	// step, or 0 for input/λ steps.
	CauseID int64
}

// Observer receives run events. All methods are called synchronously from
// the simulation loop; implementations must not call back into the kernel.
type Observer interface {
	OnSend(t model.Time, m Message)
	OnDeliver(t model.Time, m Message)
	OnOutput(p model.ProcID, t model.Time, v any)
	OnInput(p model.ProcID, t model.Time, v any)
}

// NopObserver is an Observer that ignores everything; embed it to implement
// only the callbacks you need.
type NopObserver struct{}

// OnSend implements Observer.
func (NopObserver) OnSend(model.Time, Message) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(model.Time, Message) {}

// OnOutput implements Observer.
func (NopObserver) OnOutput(model.ProcID, model.Time, any) {}

// OnInput implements Observer.
func (NopObserver) OnInput(model.ProcID, model.Time, any) {}

type eventKind int

const (
	evDeliver eventKind = iota + 1
	evTick
	evInput
	evRestart
	evDeliverBatch
)

type event struct {
	t    model.Time
	seq  int64 // FIFO tie-break for equal times
	kind eventKind
	p    model.ProcID // target process (tick, input, restart)
	gen  int32        // tick-chain generation (tick); see Kernel.tickGen
	msg  Message      // deliver; for a batch, the shared template (To/ID unset)
	in   any          // input

	// Batched broadcast delivery (evDeliverBatch): one heap entry carries
	// every recipient of one broadcast whose link delay landed on the same
	// arrival instant (the delay class). recips is pooled storage owned by
	// the event until its final member dispatches; baseID reconstructs each
	// member's message ID (IDs were stamped per recipient at send time, in
	// process order, so member q's ID is baseID+q-1); cursor is the index of
	// the next member to deliver — members dispatch ONE PER LOOP ITERATION in
	// RunUntil, so event granularity (and stop-callback semantics) is
	// identical to n individual delivery events.
	recips []model.ProcID
	baseID int64
	cursor int32
}

// Kernel is a deterministic simulation of one run R = (F, H, H_I, H_O, S, T).
type Kernel struct {
	fp *model.FailurePattern
	// faults is the liveness source: Options.Faults, or fp itself. monotone
	// devirtualizes the common case — it aliases fp whenever no custom fault
	// model is installed, so the per-event liveness check in dispatch stays a
	// direct concrete call instead of an interface call (see Kernel.up).
	faults   model.FaultModel
	monotone *model.FailurePattern // nil iff Options.Faults overrides fp
	factory  model.AutomatonFactory
	det      fd.Detector // the history as given to New
	fdc      *fd.Cached  // memoized query path used by step (one per kernel)
	autos    map[model.ProcID]model.Automaton
	opts     Options
	net      NetworkModel
	procs    []model.ProcID // Π, computed once (hot-path allocation saver)
	// tickGen guards against duplicate tick chains under churn: every tick
	// event carries the generation current when it was scheduled, a restart
	// bumps the process's generation, and stale-generation ticks die silently.
	// Without it, a down interval short enough to contain no tick would leave
	// the old chain alive next to the restart's new one.
	tickGen []int32 // index p-1
	// bcClasses is the broadcast-time delay-classing scratch (reused across
	// broadcasts): recipients of one broadcast grouped by drawn delay, so the
	// heap receives one entry per distinct arrival instant instead of one per
	// recipient. recipPool recycles the member slices when batch events
	// complete, keeping steady-state broadcast delivery allocation-free.
	bcClasses []bcClass
	recipPool [][]model.ProcID

	// restartDue marks (p, t) pairs whose evRestart has not yet dispatched.
	// Pre-run inputs carry smaller FIFO seqs than the restart events enqueued
	// in start(), so at an equal instant the input would otherwise execute
	// against the DYING incarnation — whose state (including any
	// retransmission wrapper's unacked envelopes) is wiped by the restart in
	// the same instant, silently losing the input. An input that ties with a
	// pending restart is re-enqueued instead, landing after the restart: a
	// restart is the first instant of the new incarnation, so the new state
	// receives it.
	restartDue map[restartKey]struct{}

	queue    eventHeap
	sctx     stepCtx // reused per step
	seq      int64
	msgSeq   int64
	now      model.Time
	obs      Observer
	started  bool
	nSteps   int64
	nSent    int64
	nDropped int64
	nLost    int64
}

// New builds a kernel over failure pattern fp, detector history det, and the
// automaton factory. The run starts when Run/RunUntil is first called.
//
// Detector queries made by the kernel's step loop go through a private
// fd.Cached wrapper: histories are deterministic step functions of time, so
// within one constancy segment the value is computed once and served from a
// per-process cache (see fd.Cached for the soundness argument). The wrapper
// belongs to this kernel alone, so sharing det across kernels — including
// concurrently running ones — stays safe as long as det itself is the usual
// immutable oracle.
func New(fp *model.FailurePattern, det fd.Detector, factory model.AutomatonFactory, opts Options) *Kernel {
	opts = opts.withDefaults()
	var net NetworkModel
	if opts.Network != nil {
		net = opts.Network()
		if net == nil {
			panic("sim: Options.Network factory returned nil")
		}
	} else {
		net = NewUniform(opts.MinDelay, opts.MaxDelay)
	}
	if err := ValidateNetwork(net, fp.N()); err != nil {
		panic(err.Error())
	}
	net.Reset(opts.Seed)
	var faults model.FaultModel = fp
	monotone := fp
	if opts.Faults != nil {
		faults = opts.Faults
		monotone = nil
	}
	k := &Kernel{
		fp:       fp,
		faults:   faults,
		monotone: monotone,
		factory:  factory,
		det:      det,
		fdc:      fd.NewCached(det),
		autos:    make(map[model.ProcID]model.Automaton, fp.N()),
		opts:     opts,
		net:      net,
		procs:    model.Procs(fp.N()),
		tickGen:  make([]int32, fp.N()),
		queue:    eventHeap{keys: make([]heapKey, 0, 256), slots: make([]event, 0, 256)},
		obs:      NopObserver{},
	}
	for _, p := range k.procs {
		k.autos[p] = factory(p, fp.N())
	}
	// Protocol-aware adversaries get their leadership observation here: the
	// hook reads the Ω component of the run's detector history through the
	// kernel's own fd.Cached, so the network model sees exactly the per-segment
	// leader values the automata see, at memoized cost.
	if la, ok := net.(LeaderAware); ok {
		la.ObserveLeadership(k.fdc.Leader)
	}
	return k
}

// SetObserver installs the run observer. Must be called before Run.
func (k *Kernel) SetObserver(o Observer) {
	if k.started {
		panic("sim: SetObserver after run start")
	}
	if o == nil {
		o = NopObserver{}
	}
	k.obs = o
}

// Now returns the current global clock value.
func (k *Kernel) Now() model.Time { return k.now }

// N returns the number of processes.
func (k *Kernel) N() int { return k.fp.N() }

// Pattern returns the failure pattern of the run.
func (k *Kernel) Pattern() *model.FailurePattern { return k.fp }

// Detector returns the failure detector history of the run.
func (k *Kernel) Detector() fd.Detector { return k.det }

// Automaton returns the automaton of process p for post-run inspection.
func (k *Kernel) Automaton(p model.ProcID) model.Automaton { return k.autos[p] }

// Steps returns the number of steps executed so far.
func (k *Kernel) Steps() int64 { return k.nSteps }

// MessagesSent returns the number of messages sent so far.
func (k *Kernel) MessagesSent() int64 { return k.nSent }

// MessagesDropped returns messages dropped because the recipient crashed.
func (k *Kernel) MessagesDropped() int64 { return k.nDropped }

// MessagesLost returns messages the network model chose not to deliver.
// Always 0 under the kernel's built-in models, which honor eventual delivery
// as finite delay; lossy models (internal/sim/adversary.Lossy) make it
// non-zero, and pairing them with retransmission (internal/retransmit)
// restores eventual delivery end-to-end.
func (k *Kernel) MessagesLost() int64 { return k.nLost }

// Faults returns the liveness source of the run: Options.Faults when set,
// otherwise the failure pattern itself.
func (k *Kernel) Faults() model.FaultModel { return k.faults }

// up is the per-event liveness check (hot path: every tick, input, and
// delivery). The monotone fast path keeps the historical direct call.
func (k *Kernel) up(p model.ProcID, t model.Time) bool {
	if k.monotone != nil {
		return k.monotone.Alive(p, t)
	}
	return k.faults.Up(p, t)
}

// Network returns the network model driving link behavior in this run.
func (k *Kernel) Network() NetworkModel { return k.net }

// ScheduleInput schedules an external input (operation invocation) for
// process p at time t. Inputs scheduled for crashed processes are ignored at
// execution time.
func (k *Kernel) ScheduleInput(p model.ProcID, t model.Time, v any) {
	e := k.enqueue(t)
	e.kind, e.p, e.in = evInput, p, v
}

// enqueue stamps the FIFO tie-break sequence and reserves the event's slot
// in the heap's slab; the caller fills the remaining fields in place.
// Events are plain values living inside that backing array: no per-event
// allocation, no boxing, no freelist of pointers.
func (k *Kernel) enqueue(t model.Time) *event {
	k.seq++
	return k.queue.emplace(t, k.seq)
}

func (k *Kernel) start() {
	if k.started {
		return
	}
	k.started = true
	// Initial configuration: every automaton initializes at time 0 in
	// process-ID order (deterministic), then periodic ticks are scheduled,
	// staggered by one tick per process so steps never coincide.
	for _, p := range k.procs {
		if k.up(p, 0) {
			k.step(p, func(ctx *stepCtx) { k.autos[p].Init(ctx) }, 0, 0)
		}
	}
	for i, p := range k.procs {
		e := k.enqueue(1 + model.Time(i))
		e.kind, e.p, e.gen = evTick, p, k.tickGen[p-1]
	}
	// Under churn, schedule one restart event per up-interval start. The
	// monotone FailurePattern path returns no restarts, so existing runs see
	// an identical event sequence.
	for _, p := range k.procs {
		for _, r := range k.faults.Restarts(p) {
			if r > k.opts.MaxTime {
				break // Restarts are strictly increasing per contract.
			}
			e := k.enqueue(r)
			e.kind, e.p = evRestart, p
			if k.restartDue == nil {
				k.restartDue = make(map[restartKey]struct{})
			}
			k.restartDue[restartKey{p: p, t: r}] = struct{}{}
		}
	}
}

// restartKey identifies one pending restart instant (see Kernel.restartDue).
type restartKey struct {
	p model.ProcID
	t model.Time
}

// Run executes the simulation until the global clock passes until (or
// MaxTime, whichever is smaller).
func (k *Kernel) Run(until model.Time) {
	k.RunUntil(until, nil)
}

// RunUntil executes the simulation until the clock passes maxTime, the event
// queue drains, or stop (if non-nil) returns true after some event.
//
// Batched broadcast deliveries (evDeliverBatch) expand here: the batch stays
// at the heap root — nothing enqueued during a member's step can order before
// it, since new events receive strictly larger sequence numbers — and one
// member dispatches per loop iteration, so the stop callback fires between
// individual deliveries exactly as it did when every recipient had its own
// heap entry. The batch pops (and its recipient slice recycles) only after
// its last member.
func (k *Kernel) RunUntil(maxTime model.Time, stop func(k *Kernel) bool) {
	k.start()
	if maxTime > k.opts.MaxTime {
		maxTime = k.opts.MaxTime
	}
	for k.queue.len() > 0 {
		if k.queue.peekTime() > maxTime {
			k.now = maxTime
			return
		}
		if si := k.queue.topSlot(); k.queue.slot(si).kind == evDeliverBatch {
			top := k.queue.slot(si)
			k.now = top.t
			k.deliverBatchMember(top)
			// The member's step may have grown the slab; re-resolve before
			// checking for exhaustion.
			if top = k.queue.slot(si); int(top.cursor) >= len(top.recips) {
				e := k.queue.pop()
				k.recipPool = append(k.recipPool, e.recips[:0])
			}
		} else {
			e := k.queue.pop()
			k.now = e.t
			k.dispatch(&e)
		}
		if stop != nil && stop(k) {
			return
		}
	}
}

// deliverBatchMember dispatches the next recipient of a batched broadcast
// delivery, reconstructing the member's Message from the shared template and
// the send-time ID base. The cursor advances before the step runs so the
// progress survives any slab growth the step causes.
func (k *Kernel) deliverBatchMember(e *event) {
	q := e.recips[e.cursor]
	e.cursor++
	m := e.msg
	m.To = q
	m.ID = e.baseID + int64(q-1)
	if k.up(q, e.t) {
		k.obs.OnDeliver(e.t, m)
		k.step(q, func(ctx *stepCtx) {
			k.autos[q].Recv(ctx, m.From, m.Payload)
		}, m.Depth, m.ID)
	} else {
		k.nDropped++
	}
}

func (k *Kernel) dispatch(e *event) {
	switch e.kind {
	case evTick:
		if e.gen != k.tickGen[e.p-1] {
			return // chain superseded by a restart's fresh one
		}
		if k.up(e.p, e.t) {
			k.step(e.p, func(ctx *stepCtx) { k.autos[e.p].Tick(ctx) }, 0, 0)
			next := k.enqueue(e.t + k.opts.TickInterval)
			next.kind, next.p, next.gen = evTick, e.p, e.gen
		}
	case evInput:
		if k.up(e.p, e.t) {
			if _, due := k.restartDue[restartKey{p: e.p, t: e.t}]; due {
				// The process restarts at this very instant and the restart
				// event is still queued behind us: defer the input past it so
				// the NEW incarnation — not the state about to be wiped —
				// receives it (see Kernel.restartDue).
				re := k.enqueue(e.t)
				re.kind, re.p, re.in = evInput, e.p, e.in
				return
			}
			k.obs.OnInput(e.p, e.t, e.in)
			k.step(e.p, func(ctx *stepCtx) { k.autos[e.p].Input(ctx, e.in) }, 0, 0)
		}
	case evDeliver:
		if k.up(e.msg.To, e.t) {
			k.obs.OnDeliver(e.t, e.msg)
			k.step(e.msg.To, func(ctx *stepCtx) {
				k.autos[e.msg.To].Recv(ctx, e.msg.From, e.msg.Payload)
			}, e.msg.Depth, e.msg.ID)
		} else {
			k.nDropped++
		}
	case evRestart:
		// A restart resets the process to its initial state: the automaton is
		// rebuilt (nothing survives the down interval), Init re-runs as the
		// restart step, and a fresh tick chain starts one interval later. The
		// generation bump retires any tick chain that outlived the down
		// interval (one too short to contain a tick event).
		delete(k.restartDue, restartKey{p: e.p, t: e.t})
		if !k.up(e.p, e.t) {
			return // defensive: schedule says down at its own restart time
		}
		k.tickGen[e.p-1]++
		k.autos[e.p] = k.factory(e.p, k.fp.N())
		k.step(e.p, func(ctx *stepCtx) { k.autos[e.p].Init(ctx) }, 0, 0)
		next := k.enqueue(e.t + k.opts.TickInterval)
		next.kind, next.p, next.gen = evTick, e.p, k.tickGen[e.p-1]
	case evDeliverBatch:
		// Batches never reach dispatch: RunUntil expands them in place.
		panic("sim: evDeliverBatch escaped RunUntil's batch expansion")
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", e.kind))
	}
}

// step executes one atomic step of process p: query the detector, run the
// handler, then flush sends and outputs.
func (k *Kernel) step(p model.ProcID, h func(*stepCtx), causeDepth int, causeID int64) {
	k.nSteps++
	// Steps never nest (delivery is queued, not reentrant), so one context
	// struct serves the whole run — no per-step allocation. The cost of the
	// reuse: an automaton that illegally retains its Context past the step
	// now aliases the next step's context instead of hitting the done panic,
	// so the "must not retain" contract in model.Context is load-bearing.
	ctx := &k.sctx
	*ctx = stepCtx{
		k:          k,
		self:       p,
		t:          k.now,
		fdv:        k.fdc.Value(p, k.now),
		causeDepth: causeDepth,
		causeID:    causeID,
	}
	h(ctx)
	ctx.done = true
}

// stepCtx implements model.Context for the duration of one step.
type stepCtx struct {
	k          *Kernel
	self       model.ProcID
	t          model.Time
	fdv        any
	causeDepth int
	causeID    int64
	done       bool
}

var _ model.Context = (*stepCtx)(nil)

func (c *stepCtx) Self() model.ProcID { return c.self }
func (c *stepCtx) N() int             { return c.k.fp.N() }
func (c *stepCtx) Now() model.Time    { return c.t }
func (c *stepCtx) FD() any            { return c.fdv }

func (c *stepCtx) Send(to model.ProcID, payload any) {
	if c.done {
		panic("sim: Send outside of a step")
	}
	c.k.send(c, to, payload)
}

func (c *stepCtx) Broadcast(payload any) {
	if c.done {
		panic("sim: Broadcast outside of a step")
	}
	c.k.broadcast(c, payload)
}

func (c *stepCtx) Output(v any) {
	if c.done {
		panic("sim: Output outside of a step")
	}
	c.k.obs.OnOutput(c.self, c.t, v)
}

func (k *Kernel) send(c *stepCtx, to model.ProcID, payload any) {
	m := Message{
		ID:      0, // stamped by dispatchSend
		From:    c.self,
		To:      to,
		Payload: payload,
		SentAt:  c.t,
		Depth:   c.causeDepth + 1,
		CauseID: c.causeID,
	}
	k.dispatchSend(&m)
}

// bcClass is one delay class of an in-progress broadcast: every recipient
// whose drawn link delay equals delay, in process order.
type bcClass struct {
	delay   model.Time
	members []model.ProcID // pooled; ownership moves to the batch event
}

// maxClassScan bounds the linear class lookup per recipient. Past this many
// distinct delays (a pathological spread — the shipped models draw from a
// few dozen values at most), later recipients fall into singleton classes
// rather than paying an O(classes) scan each; correctness and ordering are
// unaffected because a singleton created after the cutoff always follows
// every member its delay-mates already enqueued (process order is monotone).
const maxClassScan = 64

// grabRecips returns an empty pooled recipient slice.
func (k *Kernel) grabRecips() []model.ProcID {
	if n := len(k.recipPool); n > 0 {
		s := k.recipPool[n-1]
		k.recipPool = k.recipPool[:n-1]
		return s
	}
	return make([]model.ProcID, 0, 8)
}

// broadcast interns the per-broadcast message value: the template (payload,
// sender, depth, cause) is built ONCE and only the per-recipient fields (ID,
// To) are stamped in the loop, instead of reconstructing the full Message for
// each of the n recipients. Delay draws, message IDs, and observer callbacks
// happen in exactly the same order as n individual sends, so traces are
// bit-for-bit unchanged.
//
// Delivery is enqueued BATCHED: recipients are grouped by drawn delay and the
// heap receives one evDeliverBatch entry per distinct arrival instant —
// O(delay classes) entries instead of O(n) — expanded back into individual
// delivery steps at pop time (see RunUntil). Each class carries the sequence
// number its first member would have received, and within one broadcast all
// same-arrival recipients are consecutive in process order, so the global
// dispatch order is provably identical to n individual delivery events: the
// 4-ary slab heap just never sees the fan-out.
func (k *Kernel) broadcast(c *stepCtx, payload any) {
	m := Message{
		From:    c.self,
		Payload: payload,
		SentAt:  c.t,
		Depth:   c.causeDepth + 1,
		CauseID: c.causeID,
	}
	baseID := k.msgSeq + 1
	classes := k.bcClasses[:0]
	for _, q := range k.procs {
		k.msgSeq++
		k.nSent++
		m.To = q
		m.ID = k.msgSeq
		delay, deliver := k.net.Delay(m.From, q, m.SentAt)
		if delay < 0 {
			delay = 0
		}
		k.obs.OnSend(m.SentAt, m)
		if !deliver {
			k.nLost++
			continue
		}
		ci := -1
		if len(classes) <= maxClassScan {
			for i := range classes {
				if classes[i].delay == delay {
					ci = i
					break
				}
			}
		}
		if ci < 0 {
			classes = append(classes, bcClass{delay: delay, members: k.grabRecips()})
			ci = len(classes) - 1
		}
		classes[ci].members = append(classes[ci].members, q)
	}
	template := Message{
		From:    c.self,
		Payload: payload,
		SentAt:  c.t,
		Depth:   c.causeDepth + 1,
		CauseID: c.causeID,
	}
	for i := range classes {
		e := k.enqueue(c.t + classes[i].delay)
		e.kind = evDeliverBatch
		e.msg = template
		e.recips = classes[i].members
		e.baseID = baseID
		e.cursor = 0
		classes[i].members = nil // ownership moved to the event
	}
	k.bcClasses = classes[:0]
}

// dispatchSend stamps the next message ID onto m, draws the link delay, and
// either enqueues the delivery or counts the loss. m is caller-owned scratch:
// the event stores a copy.
func (k *Kernel) dispatchSend(m *Message) {
	k.msgSeq++
	k.nSent++
	m.ID = k.msgSeq
	delay, deliver := k.net.Delay(m.From, m.To, m.SentAt)
	if delay < 0 {
		delay = 0
	}
	k.obs.OnSend(m.SentAt, *m)
	if !deliver {
		k.nLost++
		return
	}
	e := k.enqueue(m.SentAt + delay)
	e.kind, e.msg = evDeliver, *m
}
