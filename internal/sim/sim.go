// Package sim provides a deterministic discrete-event simulator of the
// paper's asynchronous message-passing system (§2): n processes taking steps
// under a discrete global clock, reliable links with unbounded (but finite)
// message delays, crash failures injected from a failure pattern, and a
// failure-detector oracle queried at every step.
//
// Link behavior is pluggable: a NetworkModel (Options.Network) decides every
// message's delay and delivery, making the environment — the paper's central
// parameter — a first-class object. Three deterministic seeded models ship
// with the kernel: Uniform (the default: i.i.d. delays in [MinDelay,
// MaxDelay]), Partitioned (crash-free partitions that form and heal on a
// schedule, buffering cross-partition traffic until heal time so eventual
// delivery still holds), and Jittery (asymmetric per-link latency classes
// with occasional spikes, modeling partial synchrony). Preset names common
// environments ("uniform", "partition", "jitter-spiky", ...).
//
// Determinism: given the same seed, failure pattern, detector, network
// model, and automaton factory, a run is bit-for-bit reproducible. All
// scheduling choices are drawn from seeded PRNGs and all tie-breaks are
// explicit, which is what makes the property checkers in internal/trace and
// the experiment tables in internal/bench meaningful.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
)

// Options configure a simulated run.
type Options struct {
	// Seed seeds the PRNG used for message delays (it is passed to the
	// network model's Reset).
	Seed int64
	// MinDelay and MaxDelay bound the link delay of every message, in clock
	// ticks, when Network is nil (the default Uniform model). Set them equal
	// for a fixed-delay network (used to measure latency in communication
	// steps). Defaults: 10 and 20. Ignored when Network is non-nil.
	MinDelay model.Time
	MaxDelay model.Time
	// Network is the link-behavior engine. Nil selects
	// NewUniform(MinDelay, MaxDelay) — the kernel's historical behavior,
	// bit-for-bit. The kernel calls Network.Reset(Seed) at construction, so
	// the same Options value can be reused across sequential runs. Because
	// the model instance is shared, not cloned, do NOT reuse an Options
	// value with a non-nil Network while another kernel built from it is
	// still mid-run (construction would re-seed that kernel's delay stream),
	// and never share one instance between concurrently running kernels.
	Network NetworkModel
	// TickInterval is the period of λ-steps (the paper's "local timeout").
	// Default: 5. Ticks of distinct processes are staggered by one tick each
	// so no two processes ever step at the same instant.
	TickInterval model.Time
	// MaxTime bounds the run; events scheduled after MaxTime do not execute.
	// Default: 100000.
	MaxTime model.Time
}

func (o Options) withDefaults() Options {
	if o.MinDelay == 0 && o.MaxDelay == 0 {
		o.MinDelay, o.MaxDelay = 10, 20
	}
	if o.MaxDelay < o.MinDelay {
		o.MaxDelay = o.MinDelay
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 5
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 100000
	}
	return o
}

// Message is a message in transit, as scheduled by the kernel.
type Message struct {
	// ID is the unique kernel-assigned message identifier (1-based).
	ID int64
	// From and To identify the link.
	From, To model.ProcID
	// Payload is the protocol-level content.
	Payload any
	// SentAt is the time of the sending step.
	SentAt model.Time
	// Depth is the causal hop depth: 1 for a message sent from an input or
	// λ step, depth(trigger)+1 for a message sent while processing another
	// message. Used to report latency in "communication steps".
	Depth int
	// CauseID is the ID of the message whose reception triggered the sending
	// step, or 0 for input/λ steps.
	CauseID int64
}

// Observer receives run events. All methods are called synchronously from
// the simulation loop; implementations must not call back into the kernel.
type Observer interface {
	OnSend(t model.Time, m Message)
	OnDeliver(t model.Time, m Message)
	OnOutput(p model.ProcID, t model.Time, v any)
	OnInput(p model.ProcID, t model.Time, v any)
}

// NopObserver is an Observer that ignores everything; embed it to implement
// only the callbacks you need.
type NopObserver struct{}

// OnSend implements Observer.
func (NopObserver) OnSend(model.Time, Message) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(model.Time, Message) {}

// OnOutput implements Observer.
func (NopObserver) OnOutput(model.ProcID, model.Time, any) {}

// OnInput implements Observer.
func (NopObserver) OnInput(model.ProcID, model.Time, any) {}

type eventKind int

const (
	evDeliver eventKind = iota + 1
	evTick
	evInput
)

type event struct {
	t    model.Time
	seq  int64 // FIFO tie-break for equal times
	kind eventKind
	p    model.ProcID // target process (tick, input)
	msg  Message      // deliver
	in   any          // input
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a deterministic simulation of one run R = (F, H, H_I, H_O, S, T).
type Kernel struct {
	fp    *model.FailurePattern
	det   fd.Detector
	autos map[model.ProcID]model.Automaton
	opts  Options
	net   NetworkModel
	procs []model.ProcID // Π, computed once (hot-path allocation saver)

	queue    eventQueue
	free     []*event // recycled event structs
	sctx     stepCtx  // reused per step
	seq      int64
	msgSeq   int64
	now      model.Time
	obs      Observer
	started  bool
	nSteps   int64
	nSent    int64
	nDropped int64
	nLost    int64
}

// New builds a kernel over failure pattern fp, detector history det, and the
// automaton factory. The run starts when Run/RunUntil is first called.
func New(fp *model.FailurePattern, det fd.Detector, factory model.AutomatonFactory, opts Options) *Kernel {
	opts = opts.withDefaults()
	net := opts.Network
	if net == nil {
		net = NewUniform(opts.MinDelay, opts.MaxDelay)
	}
	if err := ValidateNetwork(net, fp.N()); err != nil {
		panic(err.Error())
	}
	net.Reset(opts.Seed)
	k := &Kernel{
		fp:    fp,
		det:   det,
		autos: make(map[model.ProcID]model.Automaton, fp.N()),
		opts:  opts,
		net:   net,
		procs: model.Procs(fp.N()),
		queue: make(eventQueue, 0, 256),
		obs:   NopObserver{},
	}
	for _, p := range k.procs {
		k.autos[p] = factory(p, fp.N())
	}
	return k
}

// SetObserver installs the run observer. Must be called before Run.
func (k *Kernel) SetObserver(o Observer) {
	if k.started {
		panic("sim: SetObserver after run start")
	}
	if o == nil {
		o = NopObserver{}
	}
	k.obs = o
}

// Now returns the current global clock value.
func (k *Kernel) Now() model.Time { return k.now }

// N returns the number of processes.
func (k *Kernel) N() int { return k.fp.N() }

// Pattern returns the failure pattern of the run.
func (k *Kernel) Pattern() *model.FailurePattern { return k.fp }

// Detector returns the failure detector history of the run.
func (k *Kernel) Detector() fd.Detector { return k.det }

// Automaton returns the automaton of process p for post-run inspection.
func (k *Kernel) Automaton(p model.ProcID) model.Automaton { return k.autos[p] }

// Steps returns the number of steps executed so far.
func (k *Kernel) Steps() int64 { return k.nSteps }

// MessagesSent returns the number of messages sent so far.
func (k *Kernel) MessagesSent() int64 { return k.nSent }

// MessagesDropped returns messages dropped because the recipient crashed.
func (k *Kernel) MessagesDropped() int64 { return k.nDropped }

// MessagesLost returns messages the network model chose not to deliver.
// Always 0 under the shipped models, which honor eventual delivery.
func (k *Kernel) MessagesLost() int64 { return k.nLost }

// Network returns the network model driving link behavior in this run.
func (k *Kernel) Network() NetworkModel { return k.net }

// ScheduleInput schedules an external input (operation invocation) for
// process p at time t. Inputs scheduled for crashed processes are ignored at
// execution time.
func (k *Kernel) ScheduleInput(p model.ProcID, t model.Time, v any) {
	e := k.newEvent()
	e.t, e.kind, e.p, e.in = t, evInput, p, v
	k.push(e)
}

// newEvent takes an event struct from the freelist, or allocates one. Events
// are recycled after dispatch, so steady-state runs allocate no events.
func (k *Kernel) newEvent() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{}
}

func (k *Kernel) recycle(e *event) {
	*e = event{}
	k.free = append(k.free, e)
}

func (k *Kernel) push(e *event) {
	k.seq++
	e.seq = k.seq
	heap.Push(&k.queue, e)
}

func (k *Kernel) start() {
	if k.started {
		return
	}
	k.started = true
	heap.Init(&k.queue)
	// Initial configuration: every automaton initializes at time 0 in
	// process-ID order (deterministic), then periodic ticks are scheduled,
	// staggered by one tick per process so steps never coincide.
	for _, p := range k.procs {
		if k.fp.Alive(p, 0) {
			k.step(p, func(ctx *stepCtx) { k.autos[p].Init(ctx) }, 0, 0)
		}
	}
	for i, p := range k.procs {
		e := k.newEvent()
		e.t, e.kind, e.p = 1+model.Time(i), evTick, p
		k.push(e)
	}
}

// Run executes the simulation until the global clock passes until (or
// MaxTime, whichever is smaller).
func (k *Kernel) Run(until model.Time) {
	k.RunUntil(until, nil)
}

// RunUntil executes the simulation until the clock passes maxTime, the event
// queue drains, or stop (if non-nil) returns true after some event.
func (k *Kernel) RunUntil(maxTime model.Time, stop func(k *Kernel) bool) {
	k.start()
	if maxTime > k.opts.MaxTime {
		maxTime = k.opts.MaxTime
	}
	for k.queue.Len() > 0 {
		e := k.queue[0]
		if e.t > maxTime {
			k.now = maxTime
			return
		}
		heap.Pop(&k.queue)
		k.now = e.t
		k.dispatch(e)
		k.recycle(e)
		if stop != nil && stop(k) {
			return
		}
	}
}

func (k *Kernel) dispatch(e *event) {
	switch e.kind {
	case evTick:
		alive := k.fp.Alive(e.p, e.t)
		if alive {
			k.step(e.p, func(ctx *stepCtx) { k.autos[e.p].Tick(ctx) }, 0, 0)
			next := k.newEvent()
			next.t, next.kind, next.p = e.t+k.opts.TickInterval, evTick, e.p
			k.push(next)
		}
	case evInput:
		if k.fp.Alive(e.p, e.t) {
			k.obs.OnInput(e.p, e.t, e.in)
			k.step(e.p, func(ctx *stepCtx) { k.autos[e.p].Input(ctx, e.in) }, 0, 0)
		}
	case evDeliver:
		if k.fp.Alive(e.msg.To, e.t) {
			k.obs.OnDeliver(e.t, e.msg)
			k.step(e.msg.To, func(ctx *stepCtx) {
				k.autos[e.msg.To].Recv(ctx, e.msg.From, e.msg.Payload)
			}, e.msg.Depth, e.msg.ID)
		} else {
			k.nDropped++
		}
	default:
		panic(fmt.Sprintf("sim: unknown event kind %d", e.kind))
	}
}

// step executes one atomic step of process p: query the detector, run the
// handler, then flush sends and outputs.
func (k *Kernel) step(p model.ProcID, h func(*stepCtx), causeDepth int, causeID int64) {
	k.nSteps++
	// Steps never nest (delivery is queued, not reentrant), so one context
	// struct serves the whole run — no per-step allocation. The cost of the
	// reuse: an automaton that illegally retains its Context past the step
	// now aliases the next step's context instead of hitting the done panic,
	// so the "must not retain" contract in model.Context is load-bearing.
	ctx := &k.sctx
	*ctx = stepCtx{
		k:          k,
		self:       p,
		t:          k.now,
		fdv:        k.det.Value(p, k.now),
		causeDepth: causeDepth,
		causeID:    causeID,
	}
	h(ctx)
	ctx.done = true
}

// stepCtx implements model.Context for the duration of one step.
type stepCtx struct {
	k          *Kernel
	self       model.ProcID
	t          model.Time
	fdv        any
	causeDepth int
	causeID    int64
	done       bool
}

var _ model.Context = (*stepCtx)(nil)

func (c *stepCtx) Self() model.ProcID { return c.self }
func (c *stepCtx) N() int             { return c.k.fp.N() }
func (c *stepCtx) Now() model.Time    { return c.t }
func (c *stepCtx) FD() any            { return c.fdv }

func (c *stepCtx) Send(to model.ProcID, payload any) {
	if c.done {
		panic("sim: Send outside of a step")
	}
	c.k.send(c, to, payload)
}

func (c *stepCtx) Broadcast(payload any) {
	if c.done {
		panic("sim: Broadcast outside of a step")
	}
	for _, q := range c.k.procs {
		c.k.send(c, q, payload)
	}
}

func (c *stepCtx) Output(v any) {
	if c.done {
		panic("sim: Output outside of a step")
	}
	c.k.obs.OnOutput(c.self, c.t, v)
}

func (k *Kernel) send(c *stepCtx, to model.ProcID, payload any) {
	k.msgSeq++
	k.nSent++
	delay, deliver := k.net.Delay(c.self, to, c.t)
	if delay < 0 {
		delay = 0
	}
	m := Message{
		ID:      k.msgSeq,
		From:    c.self,
		To:      to,
		Payload: payload,
		SentAt:  c.t,
		Depth:   c.causeDepth + 1,
		CauseID: c.causeID,
	}
	k.obs.OnSend(c.t, m)
	if !deliver {
		k.nLost++
		return
	}
	e := k.newEvent()
	e.t, e.kind, e.msg = c.t+delay, evDeliver, m
	k.push(e)
}
