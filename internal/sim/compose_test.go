package sim

import (
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// fakeLayer is a scriptable NetworkModel for composition tests: fixed delay,
// optional drop schedule, and a record of every call it sees.
type fakeLayer struct {
	delay    model.Time
	dropAt   map[int]bool // call index → drop
	calls    int
	seeds    []int64
	observed LeaderObservation
	validate error
}

func (f *fakeLayer) Reset(seed int64) { f.seeds = append(f.seeds, seed) }

func (f *fakeLayer) Validate(int) error { return f.validate }

func (f *fakeLayer) ObserveLeadership(obs LeaderObservation) { f.observed = obs }

func (f *fakeLayer) Delay(_, _ model.ProcID, _ model.Time) (model.Time, bool) {
	drop := f.dropAt[f.calls]
	f.calls++
	return f.delay, !drop
}

func TestComposeNetworksDelaysAddDeliveryUnanimous(t *testing.T) {
	a := &fakeLayer{delay: 5, dropAt: map[int]bool{1: true}}
	b := &fakeLayer{delay: 7}
	c := ComposeNetworks(a, b)
	c.Reset(9)
	if d, ok := c.Delay(1, 2, 0); d != 12 || !ok {
		t.Errorf("Delay = (%d, %v), want (12, true)", d, ok)
	}
	if d, ok := c.Delay(1, 2, 0); d != 12 || ok {
		t.Errorf("dropped message: Delay = (%d, %v), want (12, false): delays still add, delivery needs unanimity", d, ok)
	}
	// Every layer is consulted even after an earlier layer drops: stream
	// independence is the property that lets layers be added without
	// reshuffling their neighbors' schedules.
	if a.calls != 2 || b.calls != 2 {
		t.Errorf("layer call counts a=%d b=%d, want 2 and 2", a.calls, b.calls)
	}
}

func TestComposeNetworksSeedsDecorrelated(t *testing.T) {
	a, b := &fakeLayer{}, &fakeLayer{}
	ComposeNetworks(a, b).Reset(42)
	if len(a.seeds) != 1 || len(b.seeds) != 1 {
		t.Fatalf("each layer must be reset exactly once: %v %v", a.seeds, b.seeds)
	}
	if a.seeds[0] != 42 {
		t.Errorf("first layer seed %d, want the run seed 42 (single-layer parity)", a.seeds[0])
	}
	if b.seeds[0] == 42 {
		t.Error("second layer got the raw run seed: identical stacked models would shadow each other's draws")
	}
	// Derivation is a pure function: same run seed, same layer seeds.
	a2, b2 := &fakeLayer{}, &fakeLayer{}
	ComposeNetworks(a2, b2).Reset(42)
	if a2.seeds[0] != a.seeds[0] || b2.seeds[0] != b.seeds[0] {
		t.Error("per-layer seed derivation is not deterministic")
	}
}

func TestComposeNetworksValidateAndForwarding(t *testing.T) {
	bad := &fakeLayer{validate: errFake}
	if err := ValidateNetwork(ComposeNetworks(&fakeLayer{}, bad), 4); err == nil || !strings.Contains(err.Error(), "layer 1") {
		t.Errorf("composite validation error %v must name the failing layer", err)
	}
	if err := ValidateNetwork(&ComposedNetwork{}, 4); err == nil {
		t.Error("zero layers must fail validation")
	}
	if single := ComposeNetworks(&fakeLayer{}); single == nil {
		t.Error("single layer must be returned unwrapped")
	} else if _, ok := single.(*ComposedNetwork); ok {
		t.Error("single layer must not be wrapped")
	}

	aware, blind := &fakeLayer{}, &fakeLayer{}
	c := ComposeNetworks(aware, blind).(*ComposedNetwork)
	// Only layers implementing LeaderAware receive the observation; fakeLayer
	// implements it, so both do here — the real mixed case is exercised by
	// the hostile preset, which stacks LeaderStarver over Lossy.
	c.ObserveLeadership(func(model.ProcID, model.Time) (model.ProcID, bool) { return 1, true })
	if aware.observed == nil || blind.observed == nil {
		t.Error("observation not forwarded to the layers")
	}
}

var errFake = &validationError{"fake layer rejects"}

type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }

// TestKernelInstallsLeadershipObservation: sim.New must hand any LeaderAware
// network model an observation that answers with the Ω component of the
// run's detector history — including through a composite stack.
func TestKernelInstallsLeadershipObservation(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 2, 500)
	layer := &fakeLayer{delay: 3}
	New(fp, det, nopFactory(), Options{Seed: 1, Network: func() NetworkModel {
		return ComposeNetworks(layer, &fakeLayer{delay: 1})
	}})
	if layer.observed == nil {
		t.Fatal("kernel did not install a leadership observation")
	}
	if l, ok := layer.observed(3, 100); !ok || l != 3 {
		t.Errorf("pre-stabilization observation = (%v, %v), want (p3, true): self-trust phase", l, ok)
	}
	if l, ok := layer.observed(3, 600); !ok || l != 2 {
		t.Errorf("post-stabilization observation = (%v, %v), want (p2, true)", l, ok)
	}
}

// nopFactory builds automata that do nothing (observation wiring happens at
// construction, no run needed).
func nopFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return nopAuto{} }
}

type nopAuto struct{}

func (nopAuto) Init(model.Context)                          {}
func (nopAuto) Tick(model.Context)                          {}
func (nopAuto) Recv(model.Context, model.ProcID, any)       {}
func (nopAuto) Input(ctx model.Context, in any)             {}
