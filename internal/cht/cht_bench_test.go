package cht

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// benchSetup builds the standard 3-process eventual-Ω scenario.
func benchSetup() (*model.FailurePattern, fd.Detector) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 2, 35)
	return fp, det
}

// BenchmarkBuildDAG measures the communication-task builder (batched cached
// detector sampling, map-free predecessor assembly).
func BenchmarkBuildDAG(b *testing.B) {
	fp, det := benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 12, Seed: int64(i + 1)})
	}
}

// BenchmarkTreeGrowth measures incremental tree growth: one cached tree
// extended across every prefix of the DAG, as the lagged emulation views
// consume it.
func BenchmarkTreeGrowth(b *testing.B) {
	fp, det := benchSetup()
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewTreeCache(NewEC4(1), fp.N(), nil, 0)
		for m := 1; m <= g.Len(); m++ {
			if _, err := cache.View(g, m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTreeFresh is the non-incremental baseline for BenchmarkTreeGrowth:
// a fresh exploration per prefix, the pre-overhaul behavior.
func BenchmarkTreeFresh(b *testing.B) {
	fp, det := benchSetup()
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for m := 1; m <= g.Len(); m++ {
			ex := NewExplorer(NewEC4(1), fp.N(), g.Prefix(m), nil, 0)
			if err := ex.Build(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkValencyTagging measures per-view k-tag recomputation on a settled
// tree (no growth, reach propagation only).
func BenchmarkValencyTagging(b *testing.B) {
	fp, det := benchSetup()
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 1})
	cache := NewTreeCache(NewEC4(1), fp.N(), nil, 0)
	if _, err := cache.View(g, g.Len()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.View(g, g.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulateOmega measures the full 3-round incremental emulation (the
// E4 cell shape).
func BenchmarkEmulateOmega(b *testing.B) {
	fp, det := benchSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EmulateOmega(NewEC4(1), fp, det, EmulateOptions{
			Rounds: 3, BaseSamples: 2, ViewLag: 1,
			Build: BuildOptions{Seed: int64(i + 1)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractEC measures one-shot §4 extraction (build + tag + gadget
// search) on a fresh engine.
func BenchmarkExtractEC(b *testing.B) {
	fp, det := benchSetup()
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractEC(NewEC4(1), fp.N(), g, 0); err != nil {
			b.Fatal(err)
		}
	}
}
