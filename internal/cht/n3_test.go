package cht

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

func TestECExtractionThreeProcs(t *testing.T) {
	// The §4 extraction at n=3: the input-branching single tree stays
	// tractable and the extracted leader is the correct eventual leader.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 2, 35)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 3})
	ext, err := ExtractEC(NewEC4(1), 3, g, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Found {
		t.Fatal("n=3 extraction found nothing")
	}
	if !fp.IsCorrect(ext.Leader) {
		t.Fatalf("extracted faulty %v via %s", ext.Leader, ext.How)
	}
	t.Logf("n=3 EC extraction: leader=%v how=%s nodes=%d", ext.Leader, ext.How, ext.Nodes)
}

func TestECExtractionThreeProcsTwoInstances(t *testing.T) {
	// Two consensus instances at n=3: bigger tree, same guarantee.
	fp := model.NewFailurePattern(3)
	fp.Crash(3, 75)
	det := fd.NewOmegaEventual(fp, 1, 35)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 5})
	ext, err := ExtractEC(NewEC4(2), 3, g, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Found && !fp.IsCorrect(ext.Leader) {
		t.Fatalf("extracted faulty %v via %s", ext.Leader, ext.How)
	}
	t.Logf("n=3 L=2 extraction: %+v", ext)
}

func TestEmulateOmegaThreeProcs(t *testing.T) {
	// The full round-by-round emulation at n=3 with a crash: all correct
	// processes stabilize on the same correct leader.
	fp := model.NewFailurePattern(3)
	fp.Crash(3, 55)
	det := fd.NewOmegaEventual(fp, 1, 35)
	rounds, err := EmulateOmega(NewEC4(1), fp, det, EmulateOptions{
		Rounds:      3,
		BaseSamples: 2,
		Build:       BuildOptions{Seed: 29},
		ViewLag:     1,
		MaxNodes:    3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := rounds[len(rounds)-1]
	leader, agreed := last.Agreed(fp.Correct())
	if !agreed {
		t.Fatalf("n=3 emulation diverged: %v", last.Outputs)
	}
	if !fp.IsCorrect(leader) {
		t.Fatalf("n=3 emulation output faulty %v", leader)
	}
	for _, r := range rounds {
		t.Logf("round %d: %v (%d nodes)", r.Round, r.Outputs, r.Nodes)
	}
}
