package cht

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// config is a configuration of the simulated algorithm A: per-process states,
// the message buffer, and the bookkeeping the k-tag machinery needs.
type config struct {
	states    []string // states[p-1]
	buffer    []SimMsg // multiset, kept canonically sorted
	decided   []uint8  // decided[k-1]: bit0/bit1 = value 0/1 returned to proposeEC_k so far
	invoked   []int    // invoked[p-1]: highest instance p has invoked
	responded []int    // responded[p-1]: highest instance p has responded to
}

func (c *config) clone() config {
	return config{
		states:    append([]string(nil), c.states...),
		buffer:    append([]SimMsg(nil), c.buffer...),
		decided:   append([]uint8(nil), c.decided...),
		invoked:   append([]int(nil), c.invoked...),
		responded: append([]int(nil), c.responded...),
	}
}

func (c *config) encode() string {
	var b strings.Builder
	b.WriteString(strings.Join(c.states, "|"))
	b.WriteString("#")
	for _, m := range c.buffer {
		fmt.Fprintf(&b, "%d>%d:%s;", m.From, m.To, m.Payload)
	}
	b.WriteString("#")
	for _, d := range c.decided {
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteString("#")
	for i := range c.invoked {
		fmt.Fprintf(&b, "%d.%d,", c.invoked[i], c.responded[i])
	}
	return b.String()
}

func (c *config) sortBuffer() {
	sort.Slice(c.buffer, func(i, j int) bool {
		a, b := c.buffer[i], c.buffer[j]
		if a.To != b.To {
			return a.To < b.To
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Payload < b.Payload
	})
}

// removeMsg removes one occurrence of m from the buffer.
func (c *config) removeMsg(m SimMsg) {
	for i := range c.buffer {
		if c.buffer[i] == m {
			c.buffer = append(c.buffer[:i:i], c.buffer[i+1:]...)
			return
		}
	}
}

// edgeKind distinguishes the three step flavors of §2: accepting an input
// (an invocation of proposeEC), receiving a message, or receiving λ.
type edgeKind int

const (
	edgeInvoke edgeKind = iota + 1
	edgeMsg
	edgeLambda
)

// edge is one step extension in the simulation tree, labeled with the DAG
// vertex that supplied the failure detector value.
type edge struct {
	vertex int      // DAG vertex index (determines process and FD value)
	kind   edgeKind // input, message, or λ
	ival   int      // invoke: proposed value
	msg    SimMsg   // message consumed (kind == edgeMsg)
	child  *node
}

func (e edge) label() string {
	switch e.kind {
	case edgeInvoke:
		return fmt.Sprintf("v%d!inv(%d)", e.vertex, e.ival)
	case edgeMsg:
		return fmt.Sprintf("v%d!msg(%v)", e.vertex, e.msg)
	default:
		return fmt.Sprintf("v%d!λ", e.vertex)
	}
}

// node is a vertex of the simulation tree, deduplicated by (configuration,
// last DAG vertex): distinct schedules reaching the same configuration via
// the same sample frontier have identical futures, so the tree is explored
// as a DAG (the paper's Υ is its unfolding).
type node struct {
	id    int // deterministic enumeration order (by last vertex, then config)
	cfg   config
	enc   string
	last  int // DAG vertex of the last step, -1 at the root
	edges []edge

	// reach[k-1]: bit0/bit1 = some descendant-or-self returns 0/1 to
	// proposeEC_k; bit2 = some descendant-or-self has both (the ⊥ tag).
	reach     []uint8
	reachDone bool
}

const invalidBit = 4

// Explorer builds and tags the simulation tree induced by a DAG and an
// algorithm. fixedInputs non-nil switches to the classical simulation-forest
// mode: process p's proposeEC_1 value is fixedInputs[p-1] and no input
// branching occurs (Appendix B); nil means EC mode with branching inputs (§4).
type Explorer struct {
	alg         Algorithm
	n           int
	dag         *DAG
	fixedInputs []int
	maxNodes    int

	nodes     map[string]*node
	byOrder   []*node
	root      *node
	truncated bool
}

// NewExplorer prepares an exploration. maxNodes caps the node count (the
// limit tree is infinite; see DESIGN.md decision 4); 0 means 200000.
func NewExplorer(alg Algorithm, n int, dag *DAG, fixedInputs []int, maxNodes int) *Explorer {
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	return &Explorer{
		alg:         alg,
		n:           n,
		dag:         dag,
		fixedInputs: fixedInputs,
		maxNodes:    maxNodes,
		nodes:       make(map[string]*node),
	}
}

// Build explores every schedule compatible with paths in the DAG, then
// computes the k-tags. It returns an error if the node cap is exceeded.
func (e *Explorer) Build() error {
	L := e.alg.MaxInstance()
	rootCfg := config{
		states:    make([]string, e.n),
		decided:   make([]uint8, L),
		invoked:   make([]int, e.n),
		responded: make([]int, e.n),
	}
	for _, p := range model.Procs(e.n) {
		rootCfg.states[p-1] = e.alg.InitState(p, e.n)
	}
	e.root = &node{cfg: rootCfg, enc: rootCfg.encode(), last: -1}
	e.nodes[key(e.root.enc, -1)] = e.root

	queue := []*node{e.root}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		if nd.edges != nil {
			continue
		}
		children := e.expand(nd)
		for _, c := range children {
			if c.child.edges == nil { // not yet expanded; duplicates are skipped at pop
				queue = append(queue, c.child)
			}
		}
		if len(e.nodes) > e.maxNodes {
			e.truncated = true
			return fmt.Errorf("cht: simulation tree exceeded %d nodes (shrink the DAG)", e.maxNodes)
		}
	}

	// Deterministic enumeration order: by last vertex index (the paper's
	// m-based order), then by configuration encoding.
	e.byOrder = make([]*node, 0, len(e.nodes))
	for _, nd := range e.nodes {
		e.byOrder = append(e.byOrder, nd)
	}
	sort.Slice(e.byOrder, func(i, j int) bool {
		a, b := e.byOrder[i], e.byOrder[j]
		if a.last != b.last {
			return a.last < b.last
		}
		return a.enc < b.enc
	})
	for i, nd := range e.byOrder {
		nd.id = i
	}
	e.computeReach()
	return nil
}

func key(enc string, last int) string { return fmt.Sprintf("%d~%s", last, enc) }

// expand generates every one-step extension of nd.
func (e *Explorer) expand(nd *node) []edge {
	nd.edges = []edge{} // mark expanded
	var nexts []int
	if nd.last < 0 {
		nexts = make([]int, e.dag.Len())
		for i := range nexts {
			nexts[i] = i
		}
	} else {
		nexts = e.dag.Succs(nd.last)
	}
	for _, vi := range nexts {
		v := e.dag.Vertex(vi)
		q := v.P
		switch {
		case e.pendingInvoke(nd, q):
			inst := nd.cfg.invoked[q-1] + 1
			if e.fixedInputs != nil && inst == 1 {
				e.addInvokeEdge(nd, vi, inst, e.fixedInputs[q-1])
			} else {
				e.addInvokeEdge(nd, vi, inst, 0)
				e.addInvokeEdge(nd, vi, inst, 1)
			}
		default:
			// λ-step plus one step per distinct pending message for q.
			e.addStepEdge(nd, vi, nil)
			seen := make(map[SimMsg]bool)
			for _, m := range nd.cfg.buffer {
				if m.To == q && !seen[m] {
					seen[m] = true
					mm := m
					e.addStepEdge(nd, vi, &mm)
				}
			}
		}
	}
	return nd.edges
}

// pendingInvoke reports whether process q's next step must accept an input:
// it has not invoked proposeEC_1 yet, or it has responded to its current
// instance and the next one is within the cap ("every process invokes
// proposeEC_j as soon as it returns a response to proposeEC_{j-1}").
func (e *Explorer) pendingInvoke(nd *node, q model.ProcID) bool {
	inv := nd.cfg.invoked[q-1]
	if inv == 0 {
		return true
	}
	return nd.cfg.responded[q-1] == inv && inv < e.alg.MaxInstance()
}

func (e *Explorer) addInvokeEdge(nd *node, vi, inst, val int) {
	cfg := nd.cfg.clone()
	q := e.dag.Vertex(vi).P
	st, sends := e.alg.Invoke(q, e.n, cfg.states[q-1], inst, val)
	cfg.states[q-1] = st
	cfg.invoked[q-1] = inst
	cfg.buffer = append(cfg.buffer, sends...)
	cfg.sortBuffer()
	e.attach(nd, edge{vertex: vi, kind: edgeInvoke, ival: val}, cfg)
}

func (e *Explorer) addStepEdge(nd *node, vi int, m *SimMsg) {
	cfg := nd.cfg.clone()
	v := e.dag.Vertex(vi)
	q := v.P
	if m != nil {
		cfg.removeMsg(*m)
	}
	st, sends, decs := e.alg.Step(q, e.n, cfg.states[q-1], m, v.D)
	cfg.states[q-1] = st
	cfg.buffer = append(cfg.buffer, sends...)
	cfg.sortBuffer()
	for _, d := range decs {
		if d.Instance >= 1 && d.Instance <= len(cfg.decided) {
			cfg.decided[d.Instance-1] |= 1 << uint(d.Value&1)
		}
		if d.Instance > cfg.responded[q-1] {
			cfg.responded[q-1] = d.Instance
		}
	}
	ed := edge{vertex: vi, kind: edgeLambda}
	if m != nil {
		ed.kind = edgeMsg
		ed.msg = *m
	}
	e.attach(nd, ed, cfg)
}

func (e *Explorer) attach(nd *node, ed edge, cfg config) {
	enc := cfg.encode()
	k := key(enc, ed.vertex)
	child, ok := e.nodes[k]
	if !ok {
		child = &node{cfg: cfg, enc: enc, last: ed.vertex}
		e.nodes[k] = child
	}
	ed.child = child
	nd.edges = append(nd.edges, ed)
}

// computeReach computes reach masks bottom-up. The node graph is acyclic:
// every edge strictly increases the last DAG vertex index.
func (e *Explorer) computeReach() {
	L := e.alg.MaxInstance()
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd.reachDone {
			return
		}
		nd.reachDone = true // safe: recursion only descends to higher last index
		nd.reach = make([]uint8, L)
		for k := 0; k < L; k++ {
			nd.reach[k] = nd.cfg.decided[k] & 3
			if nd.cfg.decided[k]&3 == 3 {
				nd.reach[k] |= invalidBit
			}
		}
		for _, ed := range nd.edges {
			visit(ed.child)
			for k := 0; k < L; k++ {
				nd.reach[k] |= ed.child.reach[k]
			}
		}
	}
	visit(e.root)
	for _, nd := range e.byOrder {
		visit(nd)
	}
}

// Root returns the root node (for valency queries in the classical variant).
func (e *Explorer) Root() *node { return e.root }

// Len returns the number of distinct tree nodes explored.
func (e *Explorer) Len() int { return len(e.nodes) }

// Truncated reports whether the exploration hit the node cap.
func (e *Explorer) Truncated() bool { return e.truncated }

// enabled reports whether nd is k-enabled: k = 1 or some response to
// proposeEC_{k-1} appears in nd's schedule.
func (e *Explorer) enabled(nd *node, k int) bool {
	return k == 1 || nd.cfg.decided[k-2] != 0
}

// KTag returns the k-tag of nd: a subset of {0, 1, ⊥} encoded as a bitmask
// (bit0 = 0-tag, bit1 = 1-tag, invalidBit = ⊥). Empty when not k-enabled.
func (e *Explorer) KTag(nd *node, k int) uint8 {
	if !e.enabled(nd, k) {
		return 0
	}
	return nd.reach[k-1]
}

// Valent reports whether nd is (k, x)-valent: its k-tag is exactly {x}.
func (e *Explorer) Valent(nd *node, k, x int) bool {
	return e.KTag(nd, k) == 1<<uint(x&1)
}

// Bivalent reports whether nd is k-bivalent: its k-tag contains {0, 1}.
func (e *Explorer) Bivalent(nd *node, k int) bool {
	return e.KTag(nd, k)&3 == 3
}

// FirstBivalent locates the first k-bivalent node in the deterministic node
// order, scanning instances in increasing order; ok=false if none exists in
// this finite prefix.
func (e *Explorer) FirstBivalent() (nd *node, k int, ok bool) {
	L := e.alg.MaxInstance()
	for _, cand := range e.byOrder {
		for kk := 1; kk <= L; kk++ {
			if e.Bivalent(cand, kk) {
				return cand, kk, true
			}
		}
	}
	return nil, 0, false
}

// Subtree returns the nodes reachable from nd (including nd), in
// deterministic order.
func (e *Explorer) Subtree(nd *node) []*node {
	seen := make(map[*node]bool)
	var collect func(*node)
	collect = func(x *node) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, ed := range x.edges {
			collect(ed.child)
		}
	}
	collect(nd)
	out := make([]*node, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
