package cht

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/model"
)

// edgeKind distinguishes the three step flavors of §2: accepting an input
// (an invocation of proposeEC), receiving a message, or receiving λ.
type edgeKind uint8

const (
	edgeInvoke edgeKind = iota + 1
	edgeMsg
	edgeLambda
)

// noMsg is the message-ID sentinel for invoke and λ edges.
const noMsg int32 = -1

// treeEdge is one step extension in the simulation tree: the DAG vertex that
// supplied the failure detector value, the step flavor, and the interned
// message consumed (noMsg unless kind == edgeMsg). Everything is an integer;
// the engine's hot loop never touches a string.
type treeEdge struct {
	vertex int32
	kind   edgeKind
	ival   int8  // invoke: proposed value
	msg    int32 // interned message ID consumed (kind == edgeMsg)
	child  int32 // child node, by creation index
}

// treeNode is a vertex of the simulation tree, deduplicated by (interned
// configuration, last DAG vertex): distinct schedules reaching the same
// configuration via the same sample frontier have identical futures, so the
// tree is explored as a DAG (the paper's Υ is its unfolding).
type treeNode struct {
	cfgID int32 // interned configuration
	last  int32 // DAG vertex of the last step, -1 at the root
	// nextSucc counts how many successor vertices of `last` (all DAG
	// vertices, for the root) have been expanded, which is what makes growth
	// incremental: extending the DAG resumes every node exactly where its
	// sorted successor list left off.
	nextSucc int32
	order    int32 // position in the deterministic enumeration (byOrder)
	edges    []treeEdge
	enc      string // canonical configuration encoding (ordering/debug only)
}

// NodeID identifies a tree node inside its engine (by creation index). It is
// the handle Explorer's valency and gadget queries take.
type NodeID int32

// engine is the interned simulation-tree engine. It owns the interner, the
// append-only node store, and the deterministic enumeration, and it grows
// incrementally: incorporating DAG vertices [0, m) is resumable, so a
// monotonically growing DAG (the paper's ever-growing G) reuses every node
// and edge discovered for its earlier prefixes.
type engine struct {
	alg         Algorithm
	salg        StructuredAlgorithm // non-nil when alg has the fast path
	n           int
	L           int
	fixedInputs []int
	maxNodes    int

	in  *Interner
	dag *DAG

	dagLen    int // DAG vertices incorporated so far
	nodes     []treeNode
	nodeIdx   map[int64]int32 // (cfgID, last) → creation index
	byOrder   []int32         // creation indices sorted by (last, enc); append-only
	truncated bool

	// Reusable scratch (single-threaded, like the engine).
	scrStates    []int32
	scrBuffer    []int32
	scrDecided   []uint8
	scrInvoked   []int32
	scrResponded []int32
	scrSends     []SimMsg
	encBuf       []byte
	queue        []int32
	reachBuf     []uint8
	subBuf       []int32
	visited      []bool
}

func newEngine(alg Algorithm, n int, fixedInputs []int, maxNodes int) *engine {
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	e := &engine{
		alg:         alg,
		n:           n,
		L:           alg.MaxInstance(),
		fixedInputs: fixedInputs,
		maxNodes:    maxNodes,
		in:          NewInterner(),
		nodeIdx:     make(map[int64]int32),
	}
	if s, ok := alg.(StructuredAlgorithm); ok {
		e.salg = s
	}
	return e
}

func nodeKey(cfgID, last int32) int64 {
	return int64(cfgID)<<32 | int64(uint32(last+1))
}

// reset drops the tree (but keeps the interner: states, payloads, and
// configurations stay valid across DAGs). Used when a caller hands the cache
// a DAG that does not extend the previous one.
func (e *engine) reset() {
	e.dag = nil
	e.dagLen = 0
	e.nodes = e.nodes[:0]
	e.byOrder = e.byOrder[:0]
	e.nodeIdx = make(map[int64]int32)
	e.truncated = false
}

// extendsPrior reports whether dag's first e.dagLen vertices match the
// incorporated prefix — the monotone-growth property of BuildDAG under a
// fixed seed, detector, and gossip configuration. Samples (including the
// detector value) and the predecessor structure are both checked: a
// same-shape DAG from a different seed or detector must reset the tree, not
// silently reuse successor cursors computed against different edges. The
// check runs once per new DAG object (not per view) and is O(prefix edges),
// the same order as one valency pass.
func (e *engine) extendsPrior(dag *DAG) bool {
	if dag.Len() < e.dagLen {
		return false
	}
	if e.dag == dag {
		return true
	}
	for i := 0; i < e.dagLen; i++ {
		a, b := e.dag.Vertex(i), dag.Vertex(i)
		if a.P != b.P || a.K != b.K || a.Time != b.Time {
			return false
		}
		// DeepEqual, not ==: detector values may be uncomparable slices
		// (SigmaValue, SuspectValue), which == would panic on.
		if !reflect.DeepEqual(a.D, b.D) {
			return false
		}
		ap, bp := e.dag.Preds(i), dag.Preds(i)
		if len(ap) != len(bp) {
			return false
		}
		for j := range ap {
			if ap[j] != bp[j] {
				return false
			}
		}
	}
	return true
}

// extendTo incorporates DAG vertices [0, m) into the tree, reusing all work
// done for shorter prefixes. Soundness of the reuse rests on two structural
// facts: (a) BuildDAG only ever adds edges into newly created vertices, so an
// old vertex's successor list gains only indices ≥ the old length, and (b)
// every tree edge strictly increases the DAG vertex index, so a node's
// one-step extensions over vertices < m are final once computed — growing the
// DAG can only append extensions over the new vertices. Consequently the node
// set of the prefix-m tree is exactly {nodes with last < m} and never changes
// retroactively (see the package documentation).
func (e *engine) extendTo(dag *DAG, m int) error {
	if m > dag.Len() {
		m = dag.Len()
	}
	if !e.extendsPrior(dag) {
		e.reset()
	}
	e.dag = dag
	firstNew := len(e.nodes)
	if len(e.nodes) == 0 {
		e.initRoot()
	}
	if m > e.dagLen {
		// Every existing node may gain extensions over the new vertices;
		// nodes created along the way expand exactly once too.
		e.queue = e.queue[:0]
		for i := range e.nodes {
			e.queue = append(e.queue, int32(i))
		}
		for qi := 0; qi < len(e.queue); qi++ {
			e.expandNode(e.queue[qi], m)
			if len(e.nodes) > e.maxNodes {
				e.truncated = true
				return fmt.Errorf("cht: simulation tree exceeded %d nodes (shrink the DAG)", e.maxNodes)
			}
		}
		e.dagLen = m
	}
	e.enumerate(firstNew)
	return nil
}

// initRoot builds and interns the initial configuration.
func (e *engine) initRoot() {
	e.scrStates = e.scrStates[:0]
	for _, p := range model.Procs(e.n) {
		e.scrStates = append(e.scrStates, e.in.State(e.alg.InitState(p, e.n)))
	}
	e.scrBuffer = e.scrBuffer[:0]
	e.scrDecided = append(e.scrDecided[:0], make([]uint8, e.L)...)
	e.scrInvoked = append(e.scrInvoked[:0], make([]int32, e.n)...)
	e.scrResponded = append(e.scrResponded[:0], make([]int32, e.n)...)
	cfgID, _ := e.in.Config(e.scrStates, e.scrBuffer, e.scrDecided, e.scrInvoked, e.scrResponded)
	e.nodes = append(e.nodes, treeNode{cfgID: cfgID, last: -1})
	e.nodeIdx[nodeKey(cfgID, -1)] = 0
}

// expandNode generates the one-step extensions of node ni over DAG vertices
// < m that were not processed yet.
func (e *engine) expandNode(ni int32, m int) {
	last := e.nodes[ni].last
	if last < 0 {
		for vi := e.nodes[ni].nextSucc; int(vi) < m; vi++ {
			e.addEdgesFor(ni, vi)
		}
		e.nodes[ni].nextSucc = int32(m)
		return
	}
	succs := e.dag.Succs(int(last))
	i := e.nodes[ni].nextSucc
	for ; int(i) < len(succs) && succs[i] < m; i++ {
		e.addEdgesFor(ni, int32(succs[i]))
	}
	e.nodes[ni].nextSucc = i
}

// pendingInvoke reports whether process q's next step must accept an input:
// it has not invoked proposeEC_1 yet, or it has responded to its current
// instance and the next one is within the cap ("every process invokes
// proposeEC_j as soon as it returns a response to proposeEC_{j-1}").
func (e *engine) pendingInvoke(cfg *frozenConfig, q model.ProcID) bool {
	inv := cfg.invoked[q-1]
	if inv == 0 {
		return true
	}
	return cfg.responded[q-1] == inv && int(inv) < e.L
}

// addEdgesFor generates every extension of node ni at DAG vertex vi.
func (e *engine) addEdgesFor(ni, vi int32) {
	v := e.dag.Vertex(int(vi))
	q := v.P
	cfg := e.in.ConfigValue(e.nodes[ni].cfgID)
	if e.pendingInvoke(cfg, q) {
		inst := int(cfg.invoked[q-1]) + 1
		if e.fixedInputs != nil && inst == 1 {
			e.addInvokeEdge(ni, vi, inst, e.fixedInputs[q-1])
		} else {
			e.addInvokeEdge(ni, vi, inst, 0)
			e.addInvokeEdge(ni, vi, inst, 1)
		}
		return
	}
	// λ-step plus one step per distinct pending message for q. The buffer is
	// sorted by (to, from, payload), so q's messages are contiguous and
	// duplicates are adjacent equal IDs.
	e.addStepEdge(ni, vi, noMsg, v.D)
	prev := noMsg
	for _, mid := range e.in.ConfigValue(e.nodes[ni].cfgID).buffer {
		if e.in.msgMeta(mid).To != q {
			continue
		}
		if mid == prev {
			continue
		}
		prev = mid
		e.addStepEdge(ni, vi, mid, v.D)
	}
}

// loadScratch copies cfg into the engine's working scratch.
func (e *engine) loadScratch(cfg *frozenConfig) {
	e.scrStates = append(e.scrStates[:0], cfg.states...)
	e.scrBuffer = append(e.scrBuffer[:0], cfg.buffer...)
	e.scrDecided = append(e.scrDecided[:0], cfg.decided...)
	e.scrInvoked = append(e.scrInvoked[:0], cfg.invoked...)
	e.scrResponded = append(e.scrResponded[:0], cfg.responded...)
}

// insertMsgs interns and inserts sends into the sorted scratch buffer.
func (e *engine) insertMsgs(sends []SimMsg) {
	for _, sm := range sends {
		mid := e.in.Msg(sm)
		pos := len(e.scrBuffer)
		for pos > 0 && e.in.msgLess(mid, e.scrBuffer[pos-1]) {
			pos--
		}
		e.scrBuffer = append(e.scrBuffer, 0)
		copy(e.scrBuffer[pos+1:], e.scrBuffer[pos:])
		e.scrBuffer[pos] = mid
	}
}

// removeMsg removes one occurrence of mid from the scratch buffer.
func (e *engine) removeMsg(mid int32) {
	for i, b := range e.scrBuffer {
		if b == mid {
			e.scrBuffer = append(e.scrBuffer[:i], e.scrBuffer[i+1:]...)
			return
		}
	}
}

func (e *engine) addInvokeEdge(ni, vi int32, inst, val int) {
	cfg := e.in.ConfigValue(e.nodes[ni].cfgID)
	e.loadScratch(cfg)
	q := e.dag.Vertex(int(vi)).P
	st, sends := e.alg.Invoke(q, e.n, e.in.StateString(cfg.states[q-1]), inst, val)
	e.scrStates[q-1] = e.in.State(st)
	e.scrInvoked[q-1] = int32(inst)
	e.insertMsgs(sends)
	e.attach(ni, treeEdge{vertex: vi, kind: edgeInvoke, ival: int8(val), msg: noMsg})
}

func (e *engine) addStepEdge(ni, vi, mid int32, d any) {
	cfg := e.in.ConfigValue(e.nodes[ni].cfgID)
	e.loadScratch(cfg)
	q := e.dag.Vertex(int(vi)).P
	var mptr *SimMsg
	var mval SimMsg
	if mid != noMsg {
		mval = e.in.MsgValue(mid)
		mptr = &mval
		e.removeMsg(mid)
	}

	stateID := cfg.states[q-1]
	var sends []SimMsg
	var decs []Decided
	if e.salg != nil {
		stv := e.in.decoded[stateID]
		if stv == nil {
			stv = e.salg.DecodeState(e.n, e.in.StateString(stateID))
			e.in.decoded[stateID] = stv
		}
		next, changed, s2, d2 := e.salg.StepStructured(q, e.n, stv, mptr, d)
		sends, decs = s2, d2
		if changed {
			id, fresh := e.in.stateIntern(e.salg.EncodeState(next))
			if fresh {
				e.in.decoded[id] = next
			}
			e.scrStates[q-1] = id
		}
	} else {
		st, s2, d2 := e.alg.Step(q, e.n, e.in.StateString(stateID), mptr, d)
		sends, decs = s2, d2
		e.scrStates[q-1] = e.in.State(st)
	}
	e.insertMsgs(sends)
	for _, dd := range decs {
		if dd.Instance >= 1 && dd.Instance <= len(e.scrDecided) {
			e.scrDecided[dd.Instance-1] |= 1 << uint(dd.Value&1)
		}
		if int32(dd.Instance) > e.scrResponded[q-1] {
			e.scrResponded[q-1] = int32(dd.Instance)
		}
	}
	ed := treeEdge{vertex: vi, kind: edgeLambda, msg: noMsg}
	if mid != noMsg {
		ed.kind = edgeMsg
		ed.msg = mid
	}
	e.attach(ni, ed)
}

// attach interns the scratch configuration, finds or creates the child node,
// and appends the edge to ni.
func (e *engine) attach(ni int32, ed treeEdge) {
	cfgID, _ := e.in.Config(e.scrStates, e.scrBuffer, e.scrDecided, e.scrInvoked, e.scrResponded)
	key := nodeKey(cfgID, ed.vertex)
	ci, ok := e.nodeIdx[key]
	if !ok {
		ci = int32(len(e.nodes))
		e.nodes = append(e.nodes, treeNode{cfgID: cfgID, last: ed.vertex})
		e.nodeIdx[key] = ci
		e.queue = append(e.queue, ci)
	}
	ed.child = ci
	e.nodes[ni].edges = append(e.nodes[ni].edges, ed)
}

// enumerate appends the nodes created since firstNew to the deterministic
// enumeration: by last DAG vertex (the paper's m-based order), then by
// canonical configuration encoding. Growth never reorders earlier nodes —
// every new node's last vertex exceeds every old node's — so enumeration ids
// are stable across extensions, and the prefix-m tree's order is exactly
// byOrder truncated at last < m.
func (e *engine) enumerate(firstNew int) {
	if firstNew >= len(e.nodes) {
		return
	}
	fresh := make([]int32, 0, len(e.nodes)-firstNew)
	for i := firstNew; i < len(e.nodes); i++ {
		nd := &e.nodes[i]
		e.encBuf = e.in.encodeConfig(e.in.ConfigValue(nd.cfgID), e.encBuf[:0])
		nd.enc = string(e.encBuf)
		fresh = append(fresh, int32(i))
	}
	sort.Slice(fresh, func(i, j int) bool {
		a, b := &e.nodes[fresh[i]], &e.nodes[fresh[j]]
		if a.last != b.last {
			return a.last < b.last
		}
		return a.enc < b.enc
	})
	for _, idx := range fresh {
		e.nodes[idx].order = int32(len(e.byOrder))
		e.byOrder = append(e.byOrder, idx)
	}
}

// viewLen returns the number of tree nodes in the prefix-m view, i.e. the
// byOrder prefix with last < m (the root's last is -1, so it is always
// included).
func (e *engine) viewLen(m int) int {
	return sort.Search(len(e.byOrder), func(i int) bool {
		return int(e.nodes[e.byOrder[i]].last) >= m
	})
}

// computeReach fills the engine's reach slab for the prefix-m view:
// reach[ni*L+k] has bit0/bit1 set if some view-descendant-or-self of node ni
// returns 0/1 to proposeEC_{k+1}, and invalidBit if a single configuration
// returned both (the ⊥ tag). Nodes are processed in reverse enumeration
// order, which is reverse-topological: every edge strictly increases the last
// vertex, hence the enumeration position.
func (e *engine) computeReach(m, k int) {
	L := e.L
	need := len(e.nodes) * L
	if cap(e.reachBuf) < need {
		e.reachBuf = make([]uint8, need)
	}
	e.reachBuf = e.reachBuf[:need]
	for oi := k - 1; oi >= 0; oi-- {
		ni := e.byOrder[oi]
		nd := &e.nodes[ni]
		cfg := e.in.ConfigValue(nd.cfgID)
		r := e.reachBuf[int(ni)*L : int(ni)*L+L]
		for kk := 0; kk < L; kk++ {
			d := cfg.decided[kk] & 3
			if d == 3 {
				d |= invalidBit
			}
			r[kk] = d
		}
		for _, ed := range nd.edges {
			if int(ed.vertex) >= m {
				continue
			}
			cr := e.reachBuf[int(ed.child)*L : int(ed.child)*L+L]
			for kk := 0; kk < L; kk++ {
				r[kk] |= cr[kk]
			}
		}
	}
}

const invalidBit = 4

// ---------------------------------------------------------------------------
// Explorer: the public face of one tree view
// ---------------------------------------------------------------------------

// Explorer builds and tags the simulation tree induced by a DAG and an
// algorithm, as a view over the interned engine. fixedInputs non-nil switches
// to the classical simulation-forest mode: process p's proposeEC_1 value is
// fixedInputs[p-1] and no input branching occurs (Appendix B); nil means EC
// mode with branching inputs (§4).
type Explorer struct {
	eng *engine
	m   int // DAG prefix length of this view
	k   int // number of tree nodes in the view
}

// NewExplorer prepares a one-shot exploration of the full DAG. maxNodes caps
// the node count (the limit tree is infinite; see DESIGN.md decision 4); 0
// means 200000. For repeated extractions over a growing DAG, use TreeCache,
// which shares the engine across views.
func NewExplorer(alg Algorithm, n int, dag *DAG, fixedInputs []int, maxNodes int) *Explorer {
	ex := &Explorer{eng: newEngine(alg, n, fixedInputs, maxNodes)}
	ex.eng.dag = dag
	ex.m = dag.Len()
	return ex
}

// Build explores every schedule compatible with paths in the DAG, then
// computes the k-tags. It returns an error if the node cap is exceeded.
func (ex *Explorer) Build() error {
	dag := ex.eng.dag
	if err := ex.eng.extendTo(dag, ex.m); err != nil {
		return err
	}
	ex.k = ex.eng.viewLen(ex.m)
	ex.eng.computeReach(ex.m, ex.k)
	return nil
}

// Root returns the root node (for valency queries in the classical variant).
func (ex *Explorer) Root() NodeID { return 0 }

// Len returns the number of distinct tree nodes in this view.
func (ex *Explorer) Len() int { return ex.k }

// Truncated reports whether the exploration hit the node cap.
func (ex *Explorer) Truncated() bool { return ex.eng.truncated }

// enabled reports whether nd is k-enabled: k = 1 or some response to
// proposeEC_{k-1} appears in nd's schedule.
func (ex *Explorer) enabled(nd NodeID, k int) bool {
	return k == 1 || ex.eng.in.ConfigValue(ex.eng.nodes[nd].cfgID).decided[k-2] != 0
}

// KTag returns the k-tag of nd: a subset of {0, 1, ⊥} encoded as a bitmask
// (bit0 = 0-tag, bit1 = 1-tag, invalidBit = ⊥). Empty when not k-enabled.
func (ex *Explorer) KTag(nd NodeID, k int) uint8 {
	if !ex.enabled(nd, k) {
		return 0
	}
	return ex.eng.reachBuf[int(nd)*ex.eng.L+k-1]
}

// Valent reports whether nd is (k, x)-valent: its k-tag is exactly {x}.
func (ex *Explorer) Valent(nd NodeID, k, x int) bool {
	return ex.KTag(nd, k) == 1<<uint(x&1)
}

// Bivalent reports whether nd is k-bivalent: its k-tag contains {0, 1}.
func (ex *Explorer) Bivalent(nd NodeID, k int) bool {
	return ex.KTag(nd, k)&3 == 3
}

// FirstBivalent locates the first k-bivalent node in the deterministic node
// order, scanning instances in increasing order; ok=false if none exists in
// this finite prefix.
func (ex *Explorer) FirstBivalent() (nd NodeID, k int, ok bool) {
	for oi := 0; oi < ex.k; oi++ {
		ni := ex.eng.byOrder[oi]
		for kk := 1; kk <= ex.eng.L; kk++ {
			if ex.Bivalent(NodeID(ni), kk) {
				return NodeID(ni), kk, true
			}
		}
	}
	return 0, 0, false
}

// Subtree returns the nodes of this view reachable from nd (including nd),
// in deterministic enumeration order.
func (ex *Explorer) Subtree(nd NodeID) []NodeID {
	e := ex.eng
	if cap(e.visited) < len(e.nodes) {
		e.visited = make([]bool, len(e.nodes))
	}
	e.visited = e.visited[:len(e.nodes)]
	for i := range e.visited {
		e.visited[i] = false
	}
	e.subBuf = e.subBuf[:0]
	var collect func(ni int32)
	collect = func(ni int32) {
		if e.visited[ni] {
			return
		}
		e.visited[ni] = true
		e.subBuf = append(e.subBuf, ni)
		for _, ed := range e.nodes[ni].edges {
			if int(ed.vertex) < ex.m {
				collect(ed.child)
			}
		}
	}
	collect(int32(nd))
	out := make([]NodeID, len(e.subBuf))
	for i, ni := range e.subBuf {
		out[i] = NodeID(ni)
	}
	sort.Slice(out, func(i, j int) bool {
		return e.nodes[out[i]].order < e.nodes[out[j]].order
	})
	return out
}

// ---------------------------------------------------------------------------
// TreeCache: incremental views over a growing DAG
// ---------------------------------------------------------------------------

// TreeCache reuses one interned engine across the growing DAG prefixes the
// reduction's round structure produces (§4's ever-growing G and the lagged
// per-process views of Figure 6). View(dag, m) incorporates any new DAG
// vertices — extending frontiers only, never revisiting settled prefixes —
// and returns the prefix-m view; a DAG that does not extend the previous one
// resets the tree (the interner survives). Views from one cache share scratch
// state: use the returned Explorer before requesting the next view.
type TreeCache struct {
	eng *engine
}

// NewTreeCache prepares an incremental exploration cache. Arguments match
// NewExplorer minus the DAG, which View supplies per round.
func NewTreeCache(alg Algorithm, n int, fixedInputs []int, maxNodes int) *TreeCache {
	return &TreeCache{eng: newEngine(alg, n, fixedInputs, maxNodes)}
}

// View returns the simulation-tree view over the first m vertices of dag,
// reusing all exploration done for earlier prefixes.
func (c *TreeCache) View(dag *DAG, m int) (*Explorer, error) {
	if m > dag.Len() {
		m = dag.Len()
	}
	// Grow the shared tree to the largest prefix seen, so later lagged views
	// of the same round are pure lookups.
	target := m
	if c.eng.dagLen > target && c.eng.extendsPrior(dag) {
		target = c.eng.dagLen
	}
	if err := c.eng.extendTo(dag, target); err != nil {
		return nil, err
	}
	ex := &Explorer{eng: c.eng, m: m, k: c.eng.viewLen(m)}
	c.eng.computeReach(m, ex.k)
	return ex, nil
}
