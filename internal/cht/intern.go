package cht

import (
	"strconv"

	"repro/internal/model"
)

// Interner maps the reduction's canonical strings and composite values to
// dense int32 IDs, so the simulation-tree engine computes over integers and
// the canonical strings survive only at trace/debug boundaries (node
// encodings for the deterministic enumeration order, logs, and tests).
//
// Four spaces are interned, each append-only:
//
//   - algorithm states (the Algorithm interface's canonical state strings),
//     with an optional per-ID cache of the StructuredAlgorithm decoded form;
//   - message payloads;
//   - whole messages (from, to, payload-ID) — an edge stores one int32;
//   - whole configurations (state IDs, buffer of message IDs, decided bits,
//     invoked/responded counters), deduplicated by FNV hash + full equality,
//     so the tree's node key is a pair of integers instead of a rebuilt
//     fmt-formatted string per visit.
//
// An Interner is single-threaded, like the engine that owns it; concurrent
// sweeps give every cell its own engine.
type Interner struct {
	stateIDs map[string]int32
	states   []string
	decoded  []any // decoded[i]: cached structured form of states[i], or nil

	payloadIDs map[string]int32
	payloads   []string

	msgIDs map[internedMsg]int32
	msgs   []internedMsg

	cfgBuckets map[uint64][]int32
	cfgs       []frozenConfig

	// Slabs backing frozenConfig slices: freezing a configuration appends to
	// these and re-slices, so n small allocations per unique configuration
	// become amortized slab growth.
	stateSlab []int32
	bufSlab   []int32
	decSlab   []uint8
	cntSlab   []int32
}

// internedMsg is a SimMsg with its payload replaced by an interned ID; it is
// the comparable map key and the stored message representation.
type internedMsg struct {
	From, To model.ProcID
	Payload  int32
}

// frozenConfig is an immutable interned configuration. The slices alias the
// interner's slabs; they are never mutated after interning.
type frozenConfig struct {
	states    []int32 // states[p-1]: interned state ID
	buffer    []int32 // message IDs, canonically sorted (To, From, payload string)
	decided   []uint8 // decided[k-1]: bit0/bit1 = value 0/1 returned to proposeEC_k
	invoked   []int32 // invoked[p-1]: highest instance p has invoked
	responded []int32 // responded[p-1]: highest instance p has responded to
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		stateIDs:   make(map[string]int32),
		payloadIDs: make(map[string]int32),
		msgIDs:     make(map[internedMsg]int32),
		cfgBuckets: make(map[uint64][]int32),
	}
}

// State interns an algorithm state string.
func (in *Interner) State(s string) int32 {
	id, _ := in.stateIntern(s)
	return id
}

// stateIntern interns a state string and reports whether it was new — the
// engine uses freshness to install the StructuredAlgorithm decoded form
// without a second lookup.
func (in *Interner) stateIntern(s string) (int32, bool) {
	if id, ok := in.stateIDs[s]; ok {
		return id, false
	}
	id := int32(len(in.states))
	in.stateIDs[s] = id
	in.states = append(in.states, s)
	in.decoded = append(in.decoded, nil)
	return id, true
}

// StateString returns the canonical string of a state ID.
func (in *Interner) StateString(id int32) string { return in.states[id] }

// Payload interns a message payload string.
func (in *Interner) Payload(s string) int32 {
	if id, ok := in.payloadIDs[s]; ok {
		return id
	}
	id := int32(len(in.payloads))
	in.payloadIDs[s] = id
	in.payloads = append(in.payloads, s)
	return id
}

// Msg interns a simulated message.
func (in *Interner) Msg(m SimMsg) int32 {
	key := internedMsg{From: m.From, To: m.To, Payload: in.Payload(m.Payload)}
	if id, ok := in.msgIDs[key]; ok {
		return id
	}
	id := int32(len(in.msgs))
	in.msgIDs[key] = id
	in.msgs = append(in.msgs, key)
	return id
}

// MsgValue reconstructs the SimMsg of a message ID (trace/debug boundary).
func (in *Interner) MsgValue(id int32) SimMsg {
	m := in.msgs[id]
	return SimMsg{From: m.From, To: m.To, Payload: in.payloads[m.Payload]}
}

// msgMeta returns the stored (from, to, payload-ID) triple without
// materializing payload strings.
func (in *Interner) msgMeta(id int32) internedMsg { return in.msgs[id] }

// msgLess is the canonical buffer order — (To, From, payload string) — the
// same order the string engine's sortBuffer used, expressed over IDs.
func (in *Interner) msgLess(a, b int32) bool {
	ma, mb := in.msgs[a], in.msgs[b]
	if ma.To != mb.To {
		return ma.To < mb.To
	}
	if ma.From != mb.From {
		return ma.From < mb.From
	}
	if ma.Payload == mb.Payload {
		return false
	}
	return in.payloads[ma.Payload] < in.payloads[mb.Payload]
}

// hashConfig computes an FNV-1a hash over a working configuration.
func hashConfig(states, buffer []int32, decided []uint8, invoked, responded []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix32 := func(v int32) {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	for _, v := range states {
		mix32(v)
	}
	h ^= 0xfe
	h *= prime64
	for _, v := range buffer {
		mix32(v)
	}
	h ^= 0xfe
	h *= prime64
	for _, v := range decided {
		h ^= uint64(v)
		h *= prime64
	}
	h ^= 0xfe
	h *= prime64
	for _, v := range invoked {
		mix32(v)
	}
	for _, v := range responded {
		mix32(v)
	}
	return h
}

// Config interns a working configuration, returning its dense ID and whether
// it was new. The caller's slices are copied into the interner's slabs only
// on a miss; a hit costs the hash plus one integer-slice comparison per
// bucket candidate.
func (in *Interner) Config(states, buffer []int32, decided []uint8, invoked, responded []int32) (id int32, fresh bool) {
	h := hashConfig(states, buffer, decided, invoked, responded)
	for _, cand := range in.cfgBuckets[h] {
		c := &in.cfgs[cand]
		if eqI32(c.states, states) && eqI32(c.buffer, buffer) && eqU8(c.decided, decided) &&
			eqI32(c.invoked, invoked) && eqI32(c.responded, responded) {
			return cand, false
		}
	}
	id = int32(len(in.cfgs))
	in.cfgs = append(in.cfgs, frozenConfig{
		states:    in.freezeI32(&in.stateSlab, states),
		buffer:    in.freezeI32(&in.bufSlab, buffer),
		decided:   in.freezeU8(&in.decSlab, decided),
		invoked:   in.freezeI32(&in.cntSlab, invoked),
		responded: in.freezeI32(&in.cntSlab, responded),
	})
	in.cfgBuckets[h] = append(in.cfgBuckets[h], id)
	return id, true
}

// ConfigValue returns the frozen configuration of an ID (do not modify).
func (in *Interner) ConfigValue(id int32) *frozenConfig { return &in.cfgs[id] }

func (in *Interner) freezeI32(slab *[]int32, src []int32) []int32 {
	s := append(*slab, src...)
	*slab = s
	return s[len(s)-len(src) : len(s):len(s)]
}

func (in *Interner) freezeU8(slab *[]uint8, src []uint8) []uint8 {
	s := append(*slab, src...)
	*slab = s
	return s[len(s)-len(src) : len(s):len(s)]
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// encodeConfig renders the canonical configuration string, byte-identical to
// the string engine's config.encode: states joined with '|', then the sorted
// buffer as "from>to:payload;" triples, the decided bitmask digits, and the
// "invoked.responded," counters, with '#' between the four sections. It is
// called once per unique tree node (for the deterministic enumeration order
// and debugging), not per simulated step.
func (in *Interner) encodeConfig(c *frozenConfig, dst []byte) []byte {
	for i, st := range c.states {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = append(dst, in.states[st]...)
	}
	dst = append(dst, '#')
	for _, mid := range c.buffer {
		m := in.msgs[mid]
		dst = strconv.AppendInt(dst, int64(m.From), 10)
		dst = append(dst, '>')
		dst = strconv.AppendInt(dst, int64(m.To), 10)
		dst = append(dst, ':')
		dst = append(dst, in.payloads[m.Payload]...)
		dst = append(dst, ';')
	}
	dst = append(dst, '#')
	for _, d := range c.decided {
		dst = strconv.AppendUint(dst, uint64(d), 10)
	}
	dst = append(dst, '#')
	for i := range c.invoked {
		dst = strconv.AppendInt(dst, int64(c.invoked[i]), 10)
		dst = append(dst, '.')
		dst = strconv.AppendInt(dst, int64(c.responded[i]), 10)
		dst = append(dst, ',')
	}
	return dst
}
