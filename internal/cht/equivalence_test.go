package cht

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// stringPathAlg hides an algorithm's StructuredAlgorithm fast path, forcing
// the engine down the reference string Step/decode/encode route.
type stringPathAlg struct{ inner Algorithm }

func (a stringPathAlg) Name() string        { return a.inner.Name() }
func (a stringPathAlg) MaxInstance() int    { return a.inner.MaxInstance() }
func (a stringPathAlg) InitState(p model.ProcID, n int) string {
	return a.inner.InitState(p, n)
}
func (a stringPathAlg) Invoke(p model.ProcID, n int, state string, instance, value int) (string, []SimMsg) {
	return a.inner.Invoke(p, n, state, instance, value)
}
func (a stringPathAlg) Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided) {
	return a.inner.Step(p, n, state, m, d)
}

// e4Scenario mirrors one row block of bench experiment E4.
type e4Scenario struct {
	name      string
	classical bool
	L         int
	fp        func() *model.FailurePattern
	det       func(fp *model.FailurePattern) fd.Detector
}

func e4Scenarios() []e4Scenario {
	crash := func() *model.FailurePattern {
		fp := model.NewFailurePattern(2)
		fp.Crash(1, 55)
		return fp
	}
	free := func() *model.FailurePattern { return model.NewFailurePattern(2) }
	return []e4Scenario{
		{"classical/stable", true, 1, free,
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }},
		{"classical/eventual", true, 1, free,
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaEventual(fp, 2, 35) }},
		{"ec/eventual", false, 2, free,
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaEventual(fp, 2, 35) }},
		{"ec/eventual-crash", false, 2, crash,
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaEventual(fp, 2, 35) }},
	}
}

// TestStructuredMatchesStringPath pins the StructuredAlgorithm fast path to
// the reference string path: the full emulation — leader estimate sequences,
// extraction rules, and tree sizes — must be identical across all E4
// scenarios and a spread of DAG seeds.
func TestStructuredMatchesStringPath(t *testing.T) {
	for _, sc := range e4Scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				fp := sc.fp()
				run := func(alg Algorithm) []EmulationRound {
					rs, err := EmulateOmega(alg, fp, sc.det(fp), EmulateOptions{
						Rounds:      3,
						Classical:   sc.classical,
						BaseSamples: 2,
						Build:       BuildOptions{Seed: seed},
						ViewLag:     1,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					return rs
				}
				fast := run(NewEC4(sc.L))
				ref := run(stringPathAlg{NewEC4(sc.L)})
				if !reflect.DeepEqual(fast, ref) {
					t.Fatalf("seed %d: structured path diverged\nfast: %+v\nref:  %+v", seed, fast, ref)
				}
			}
		})
	}
}

// TestIncrementalMatchesFreshExtraction pins the incremental tree growth to
// one-shot exploration: for every prefix of a growing DAG, the TreeCache view
// must yield the same first bivalent vertex, the same decision gadget, and
// the same extraction as a fresh Explorer over DAG.Prefix.
func TestIncrementalMatchesFreshExtraction(t *testing.T) {
	for _, sc := range e4Scenarios() {
		if sc.classical {
			continue // the EC view API; classical is covered by TestIncrementalMatchesFreshEmulation
		}
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				fp := sc.fp()
				det := sc.det(fp)
				full := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: seed})
				cache := NewTreeCache(NewEC4(sc.L), fp.N(), nil, 0)
				for m := 1; m <= full.Len(); m++ {
					inc, err := cache.View(full, m)
					if err != nil {
						t.Fatal(err)
					}
					got := extractECView(inc)
					want, err := ExtractEC(NewEC4(sc.L), fp.N(), full.Prefix(m), 0)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("seed %d prefix %d: incremental %+v != fresh %+v", seed, m, got, want)
					}
					// Gadget identity, not just the extraction summary.
					if p1, k1, ok1 := inc.FirstBivalent(); ok1 {
						fresh := NewExplorer(NewEC4(sc.L), fp.N(), full.Prefix(m), nil, 0)
						if err := fresh.Build(); err != nil {
							t.Fatal(err)
						}
						p2, k2, ok2 := fresh.FirstBivalent()
						if !ok2 || k1 != k2 || inc.eng.nodes[p1].order != fresh.eng.nodes[p2].order {
							t.Fatalf("seed %d prefix %d: bivalent pivot mismatch", seed, m)
						}
						g1, ok1 := inc.FindGadget(p1, k1)
						g2, ok2 := fresh.FindGadget(p2, k2)
						if ok1 != ok2 || g1 != g2 {
							t.Fatalf("seed %d prefix %d: gadget mismatch: %v vs %v", seed, m, g1, g2)
						}
					}
				}
			}
		})
	}
}

// TestIncrementalMatchesFreshEmulation re-implements EmulateOmega's round
// loop with fresh one-shot extractions (the pre-overhaul behavior) and checks
// the incremental emulation reproduces it exactly, for all E4 scenarios and
// a spread of seeds — the golden equivalence for the engine as a whole.
func TestIncrementalMatchesFreshEmulation(t *testing.T) {
	const rounds = 3
	for _, sc := range e4Scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				fp := sc.fp()
				det := sc.det(fp)
				alg := NewEC4(sc.L)
				incremental, err := EmulateOmega(alg, fp, det, EmulateOptions{
					Rounds: rounds, Classical: sc.classical, BaseSamples: 2,
					Build: BuildOptions{Seed: seed}, ViewLag: 1,
				})
				if err != nil {
					t.Fatal(err)
				}

				// Reference loop: fresh DAG, fresh trees, every round.
				estimates := map[model.ProcID]model.ProcID{}
				for _, p := range model.Procs(fp.N()) {
					estimates[p] = p
				}
				for r := 1; r <= rounds; r++ {
					full := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 2 + r - 1, Seed: seed})
					round := incremental[r-1]
					wantNodes := 0
					for _, p := range fp.Correct() {
						cut := full.Len() - int(p-1)
						if cut < 1 {
							cut = 1
						}
						view := full.Prefix(cut)
						var ext Extraction
						var err error
						if sc.classical {
							ext, err = ExtractClassical(alg, fp.N(), view, 0)
						} else {
							ext, err = ExtractEC(alg, fp.N(), view, 0)
						}
						if err != nil {
							t.Fatal(err)
						}
						wantNodes += ext.Nodes
						wantHow := "carry-over"
						if ext.Found {
							estimates[p] = ext.Leader
							wantHow = ext.How
						}
						if round.Outputs[p] != estimates[p] || round.Hows[p] != wantHow {
							t.Fatalf("seed %d round %d %v: incremental (%v, %s) != fresh (%v, %s)",
								seed, r, p, round.Outputs[p], round.Hows[p], estimates[p], wantHow)
						}
					}
					if round.Nodes != wantNodes {
						t.Fatalf("seed %d round %d: node count %d != fresh %d", seed, r, round.Nodes, wantNodes)
					}
				}
			}
		})
	}
}

// TestParsePromoteMatchesSscanf pins the fast payload parser to the
// reference path's fmt.Sscanf("%d:%d") acceptance, including payloads EC4
// never generates (trailing content, signs, leading spaces): the two Step
// paths must agree on every input, not just well-formed ones.
func TestParsePromoteMatchesSscanf(t *testing.T) {
	payloads := []string{
		"1:0", "2:1", "-3:+4", " 1: 0", "3:4:5", "3:4x", "12:34extra",
		"", ":", "1:", ":1", "a:1", "1:a", "x", "1", "+:-", " -7 : 8",
	}
	for _, p := range payloads {
		var wi, wv int
		n, err := fmt.Sscanf(p, "%d:%d", &wi, &wv)
		want := n == 2 && err == nil
		gi, gv, got := parsePromote(p)
		if got != want {
			t.Errorf("payload %q: parsePromote ok=%v, Sscanf ok=%v", p, got, want)
			continue
		}
		if got && (gi != wi || gv != wv) {
			t.Errorf("payload %q: parsePromote (%d, %d) != Sscanf (%d, %d)", p, gi, gv, wi, wv)
		}
	}
}

// TestTreeCacheResetsOnForeignDAG: handing a cache a same-shape DAG built
// from a different seed (same vertex (P, K, Time) sequence, different gossip
// edges) must reset the tree, not silently mix the two DAGs' successor
// structures — the extraction must match a fresh engine on the new DAG.
func TestTreeCacheResetsOnForeignDAG(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 2, 35)
	g1 := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 1})
	g2 := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 31})

	cache := NewTreeCache(NewEC4(2), fp.N(), nil, 0)
	if _, err := cache.View(g1, g1.Len()); err != nil {
		t.Fatal(err)
	}
	v2, err := cache.View(g2, g2.Len())
	if err != nil {
		t.Fatal(err)
	}
	got := extractECView(v2)
	want, err := ExtractEC(NewEC4(2), fp.N(), g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cache reused stale tree across foreign DAGs: %+v != %+v", got, want)
	}
}

// TestStructuredStateRoundtrip pins DecodeState/EncodeState as inverses on
// states the string path produces, including multi-entry receive sets.
func TestStructuredStateRoundtrip(t *testing.T) {
	a := NewEC4(2)
	s := a.InitState(1, 3)
	states := []string{s}
	s, _ = a.Invoke(1, 3, s, 1, 1)
	states = append(states, s)
	for _, m := range []SimMsg{
		{From: 2, To: 1, Payload: "1:0"},
		{From: 3, To: 1, Payload: "1:1"},
		{From: 1, To: 1, Payload: "1:1"},
		{From: 2, To: 1, Payload: "2:1"},
	} {
		mm := m
		s, _, _ = a.Step(1, 3, s, &mm, nil)
		states = append(states, s)
	}
	s2, _, _ := a.Step(1, 3, s, nil, fd.OmegaValue(2))
	states = append(states, s2)
	for _, st := range states {
		if got := a.EncodeState(a.DecodeState(3, st)); got != st {
			t.Fatalf("roundtrip broke: %q -> %q", st, got)
		}
	}
}
