package cht

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
)

// Extraction is the outcome of one extraction attempt from one DAG view.
type Extraction struct {
	// Leader is the emulated Ω output; valid when Found.
	Leader model.ProcID
	Found  bool
	// How identifies the rule that produced the leader: a gadget kind,
	// "univalent-critical", or "" when not Found.
	How string
	// Instance is the consensus instance whose bivalence drove the gadget
	// (EC variant), or 0.
	Instance int
	// CriticalIndex is the located critical index (classical variant), or 0.
	CriticalIndex int
	// Nodes is the total number of simulation-tree nodes explored.
	Nodes int
}

// extractECView runs the §4 extraction over one built view: locate the first
// k-bivalent vertex (Algorithm 3's target) and return the deciding process of
// the smallest decision gadget below it.
func extractECView(ex *Explorer) Extraction {
	res := Extraction{Nodes: ex.Len()}
	pivot, k, ok := ex.FirstBivalent()
	if !ok {
		return res
	}
	g, ok := ex.FindGadget(pivot, k)
	if !ok {
		return res
	}
	res.Found = true
	res.Leader = g.Deciding
	res.How = string(g.Kind)
	res.Instance = k
	return res
}

// ExtractEC runs the paper's §4 extraction against algorithm alg and the DAG
// view: build the single simulation tree with branching inputs, locate the
// first k-bivalent vertex, and return the deciding process of the smallest
// decision gadget below it.
func ExtractEC(alg Algorithm, n int, dag *DAG, maxNodes int) (Extraction, error) {
	ex := NewExplorer(alg, n, dag, nil, maxNodes)
	if err := ex.Build(); err != nil {
		return Extraction{}, err
	}
	return extractECView(ex), nil
}

// extractClassicalViews runs the Appendix-B critical-index argument over the
// n+1 built forest views (view i fixes p_1..p_i proposing 1, the rest 0).
func extractClassicalViews(views []*Explorer, n int) Extraction {
	res := Extraction{}
	tags := make([]uint8, n+1)
	for i, ex := range views {
		tags[i] = ex.KTag(ex.Root(), 1)
		res.Nodes += ex.Len()
	}
	// Smallest critical index i ∈ {1..n}: root(Υ^i) bivalent, or
	// root(Υ^{i-1}) 0-valent and root(Υ^i) 1-valent.
	for i := 1; i <= n; i++ {
		bivalent := tags[i]&3 == 3
		univalent := tags[i-1] == 1 && tags[i] == 2
		if !bivalent && !univalent {
			continue
		}
		res.CriticalIndex = i
		if univalent {
			res.Found = true
			res.Leader = model.ProcID(i)
			res.How = "univalent-critical"
			return res
		}
		if g, ok := views[i].FindGadget(views[i].Root(), 1); ok {
			res.Found = true
			res.Leader = g.Deciding
			res.How = string(g.Kind)
			return res
		}
		return res // bivalent critical but no gadget in this finite prefix
	}
	return res
}

// classicalInputs returns the paper's initial configuration I^i: p_1..p_i
// propose 1, the rest 0.
func classicalInputs(n, i int) []int {
	inputs := make([]int, n)
	for j := 1; j <= i; j++ {
		inputs[j-1] = 1
	}
	return inputs
}

// ExtractClassical runs the Appendix-B extraction for a one-shot consensus
// algorithm (alg.MaxInstance() == 1): build the simulation forest over the
// initial configurations I^0..I^n, find the smallest critical index, and
// output either p_i (univalent critical, Lemma 7) or the deciding process of
// a decision gadget in Υ^i (bivalent critical, Lemmas 8–9).
func ExtractClassical(alg Algorithm, n int, dag *DAG, maxNodes int) (Extraction, error) {
	if alg.MaxInstance() != 1 {
		return Extraction{}, fmt.Errorf("cht: classical extraction needs a one-shot algorithm, got L=%d", alg.MaxInstance())
	}
	views := make([]*Explorer, n+1)
	for i := 0; i <= n; i++ {
		ex := NewExplorer(alg, n, dag, classicalInputs(n, i), maxNodes)
		if err := ex.Build(); err != nil {
			return Extraction{}, err
		}
		views[i] = ex
	}
	// KTag reads the engine's reach slab, which is per-engine here (one
	// engine per forest tree), so the views stay valid side by side.
	return extractClassicalViews(views, n), nil
}

// EmulationRound records the Ω estimates of every correct process after one
// growth round of the reduction.
type EmulationRound struct {
	Round   int
	Samples int // DAG samples per process in this round
	Outputs map[model.ProcID]model.ProcID
	Hows    map[model.ProcID]string
	Nodes   int
}

// Agreed reports whether all correct processes output the same leader, and
// that leader.
func (r EmulationRound) Agreed(correct []model.ProcID) (model.ProcID, bool) {
	var leader model.ProcID
	for i, p := range correct {
		out := r.Outputs[p]
		if i == 0 {
			leader = out
			continue
		}
		if out != leader {
			return model.NoProc, false
		}
	}
	return leader, true
}

// EmulateOptions configure EmulateOmega.
type EmulateOptions struct {
	// Rounds is how many growth rounds to run.
	Rounds int
	// Classical selects the Appendix-B extraction (one-shot consensus);
	// false selects the §4 EC extraction.
	Classical bool
	// MaxNodes caps each tree exploration.
	MaxNodes int
	// Build configures the DAG growth (SamplesPerProcess is overridden per
	// round: round r uses r+BaseSamples−1 samples).
	Build BuildOptions
	// BaseSamples is the sample count of round 1 (default 2).
	BaseSamples int
	// ViewLag staggers each process's view of the shared DAG by (p−1)·ViewLag
	// vertices, modeling the gossip delay of the communication task
	// (default 1).
	ViewLag int
}

// EmulateOmega runs the full reduction T_{D→Ω} round by round: in round r the
// communication task has produced a larger DAG; every correct process applies
// the extraction to its (lagged) view and updates its Ω estimate, keeping the
// previous estimate (initially itself) when the finite prefix does not yet
// contain a gadget — exactly the reduction's behavior on a finite prefix of
// the limit tree.
//
// Across rounds the DAG grows monotonically (same build seed, more samples),
// and every per-process view is a prefix of it, so the simulation trees are
// built incrementally: one TreeCache per forest tree carries all nodes, edges
// and interned configurations from round to round and only extends frontiers
// reachable from the new DAG vertices. The detector is wrapped in fd.Cached
// once, so each round's rebuilt DAG re-samples H(p, t) from the per-segment
// cache instead of recomputing histories.
func EmulateOmega(alg Algorithm, fp *model.FailurePattern, det fd.Detector, opts EmulateOptions) ([]EmulationRound, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if opts.BaseSamples <= 0 {
		opts.BaseSamples = 2
	}
	if opts.ViewLag < 0 {
		opts.ViewLag = 0
	}
	n := fp.N()
	det = fd.NewCached(det)

	var caches []*TreeCache
	if opts.Classical {
		if alg.MaxInstance() != 1 {
			return nil, fmt.Errorf("cht: classical extraction needs a one-shot algorithm, got L=%d", alg.MaxInstance())
		}
		caches = make([]*TreeCache, n+1)
		for i := 0; i <= n; i++ {
			caches[i] = NewTreeCache(alg, n, classicalInputs(n, i), opts.MaxNodes)
		}
	} else {
		caches = []*TreeCache{NewTreeCache(alg, n, nil, opts.MaxNodes)}
	}

	estimates := make(map[model.ProcID]model.ProcID, n)
	for _, p := range model.Procs(n) {
		estimates[p] = p // Ω-output_p initially p (Figure 6)
	}
	var rounds []EmulationRound
	views := make([]*Explorer, len(caches))
	for r := 1; r <= opts.Rounds; r++ {
		b := opts.Build
		b.SamplesPerProcess = opts.BaseSamples + r - 1
		full := BuildDAG(fp, det, b)
		round := EmulationRound{
			Round:   r,
			Samples: b.SamplesPerProcess,
			Outputs: make(map[model.ProcID]model.ProcID, n),
			Hows:    make(map[model.ProcID]string, n),
		}
		for _, p := range fp.Correct() {
			cut := full.Len() - int(p-1)*opts.ViewLag
			if cut < 1 {
				cut = 1
			}
			var ext Extraction
			if opts.Classical {
				for i, c := range caches {
					ex, err := c.View(full, cut)
					if err != nil {
						return rounds, err
					}
					views[i] = ex
				}
				ext = extractClassicalViews(views, n)
			} else {
				ex, err := caches[0].View(full, cut)
				if err != nil {
					return rounds, err
				}
				ext = extractECView(ex)
			}
			round.Nodes += ext.Nodes
			if ext.Found {
				estimates[p] = ext.Leader
				round.Hows[p] = ext.How
			} else {
				round.Hows[p] = "carry-over"
			}
			round.Outputs[p] = estimates[p]
		}
		rounds = append(rounds, round)
	}
	return rounds, nil
}
