package cht

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

func TestExtractionDeterministic(t *testing.T) {
	// The reduction must be a deterministic function of the DAG: repeated
	// extraction over the same view yields the identical result — the
	// property that lets all correct processes converge on the SAME leader.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 2, 35)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 31})
	first, err := ExtractEC(NewEC4(2), 2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := ExtractEC(NewEC4(2), 2, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("extraction not deterministic: %+v vs %+v", first, again)
		}
	}
}

func TestExtractionStableUnderGrowth(t *testing.T) {
	// Once the extraction finds a leader, growing the DAG (same seed) must
	// keep extracting the same leader — the stabilization Lemma 1 needs.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 2, 35)
	var stable model.ProcID
	for samples := 3; samples <= 6; samples++ {
		g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: samples, Seed: 31})
		ext, err := ExtractEC(NewEC4(2), 2, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Found {
			continue
		}
		if stable == model.NoProc {
			stable = ext.Leader
			continue
		}
		if ext.Leader != stable {
			t.Fatalf("samples=%d: leader flipped from %v to %v", samples, stable, ext.Leader)
		}
	}
	if stable == model.NoProc {
		t.Fatal("extraction never found a leader")
	}
	if !fp.IsCorrect(stable) {
		t.Fatalf("stabilized on faulty %v", stable)
	}
}

func TestViewPrefixesConvergeToSameLeader(t *testing.T) {
	// Different processes see different-length prefixes of the same DAG;
	// once both prefixes are long enough, both must extract the same leader
	// (the agreement half of the emulation).
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 1, 35)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 6, Seed: 41})
	full, err := ExtractEC(NewEC4(2), 2, g, 0)
	if err != nil || !full.Found {
		t.Fatalf("full view: %+v err=%v", full, err)
	}
	lagged, err := ExtractEC(NewEC4(2), 2, g.Prefix(g.Len()-1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lagged.Found && lagged.Leader != full.Leader {
		t.Fatalf("views disagree: full=%v lagged=%v", full.Leader, lagged.Leader)
	}
}

func TestGadgetDecidingProcessAlwaysCorrectAcrossSeeds(t *testing.T) {
	// Lemma 8 in the aggregate: across many DAG seeds, whenever a gadget is
	// found its deciding process is correct.
	fp := model.NewFailurePattern(2)
	fp.Crash(1, 55)
	det := fd.NewOmegaEventual(fp, 2, 35)
	found := 0
	for seed := int64(1); seed <= 12; seed++ {
		g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: seed})
		ext, err := ExtractEC(NewEC4(2), 2, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Found {
			continue
		}
		found++
		if !fp.IsCorrect(ext.Leader) {
			t.Fatalf("seed %d: extracted faulty %v via %s", seed, ext.Leader, ext.How)
		}
	}
	if found == 0 {
		t.Fatal("no seed produced a gadget")
	}
	t.Logf("gadgets found in %d/12 seeds, all deciding processes correct", found)
}
