package cht

import (
	"fmt"

	"repro/internal/model"
)

// GadgetKind identifies the decision-gadget shape (Figure 3).
type GadgetKind string

// The gadget shapes. Forks and hooks are the paper's Figure 3; input forks
// are the analogous shape at input-accepting steps, which arise in the EC
// variant where proposal values branch inside the single simulation tree
// (§4, footnote 2) — the deciding process is correct by the same argument as
// Lemma 8 (only it distinguishes the two branches).
const (
	GadgetFork      GadgetKind = "fork"
	GadgetHook      GadgetKind = "hook"
	GadgetInputFork GadgetKind = "input-fork"
)

// Gadget is a located decision gadget: its pivot node, shape, instance, and
// the deciding process (provably correct, Lemma 8).
type Gadget struct {
	Kind     GadgetKind
	Instance int
	Pivot    *node
	Deciding model.ProcID
}

// String renders a description for logs.
func (g Gadget) String() string {
	return fmt.Sprintf("%s@node%d k=%d deciding=%v", g.Kind, g.Pivot.id, g.Instance, g.Deciding)
}

// stepLabel identifies a step (q, m, ·) ignoring the detector value, to group
// fork candidates: two edges with the same label but different DAG vertices
// are "two different steps by the same process consuming the same message".
func stepLabel(e *Explorer, ed edge) (string, model.ProcID) {
	q := e.dag.Vertex(ed.vertex).P
	switch ed.kind {
	case edgeMsg:
		return fmt.Sprintf("m|%v|%d>%s", q, ed.msg.From, ed.msg.Payload), q
	case edgeLambda:
		return fmt.Sprintf("l|%v", q), q
	default:
		return fmt.Sprintf("i|%v|inst", q), q
	}
}

// FindGadget searches the subtree of pivot for the smallest decision gadget
// with respect to instance k, in deterministic order. ok=false if the finite
// prefix contains none (the limit tree always does, Lemma 9).
func (e *Explorer) FindGadget(pivot *node, k int) (Gadget, bool) {
	sub := e.Subtree(pivot)

	// Forks first (including input forks), in node order.
	for _, nd := range sub {
		groups := make(map[string][]edge)
		var inputs []edge
		for _, ed := range nd.edges {
			if ed.kind == edgeInvoke {
				inputs = append(inputs, ed)
				continue
			}
			lbl, _ := stepLabel(e, ed)
			groups[lbl] = append(groups[lbl], ed)
		}
		// Classic fork: same (q, m), different detector sample, opposite
		// univalent children.
		for _, eds := range groups {
			if g, ok := e.forkIn(nd, eds, k, GadgetFork); ok {
				return g, true
			}
		}
		// Input fork: same process invoking with 0 vs 1, opposite univalent
		// children.
		if g, ok := e.forkIn(nd, inputs, k, GadgetInputFork); ok {
			return g, true
		}
	}

	// Hooks: S --e'--> S', and a step σ applicable at both S and S' whose two
	// applications are opposite univalent.
	for _, nd := range sub {
		for _, ePrime := range nd.edges {
			sPrime := ePrime.child
			// Match steps of nd and sPrime by identical (vertex, kind, msg).
			byStep := make(map[string]edge, len(nd.edges))
			for _, ed := range nd.edges {
				byStep[fmt.Sprintf("%d/%d/%v/%d", ed.vertex, ed.kind, ed.msg, ed.ival)] = ed
			}
			for _, ed2 := range sPrime.edges {
				ed1, ok := byStep[fmt.Sprintf("%d/%d/%v/%d", ed2.vertex, ed2.kind, ed2.msg, ed2.ival)]
				if !ok {
					continue
				}
				x1, ok1 := e.univalence(ed1.child, k)
				x2, ok2 := e.univalence(ed2.child, k)
				if ok1 && ok2 && x1 != x2 {
					return Gadget{
						Kind:     GadgetHook,
						Instance: k,
						Pivot:    nd,
						Deciding: e.dag.Vertex(ed2.vertex).P,
					}, true
				}
			}
		}
	}
	return Gadget{}, false
}

// forkIn looks for a pair of edges within eds with opposite univalent
// children.
func (e *Explorer) forkIn(nd *node, eds []edge, k int, kind GadgetKind) (Gadget, bool) {
	var zero, one *edge
	for i := range eds {
		if x, ok := e.univalence(eds[i].child, k); ok {
			if x == 0 && zero == nil {
				zero = &eds[i]
			}
			if x == 1 && one == nil {
				one = &eds[i]
			}
		}
	}
	if zero != nil && one != nil {
		_, q := stepLabel(e, *zero)
		return Gadget{Kind: kind, Instance: k, Pivot: nd, Deciding: q}, true
	}
	return Gadget{}, false
}

// univalence returns (x, true) if nd is (k, x)-valent.
func (e *Explorer) univalence(nd *node, k int) (int, bool) {
	switch e.KTag(nd, k) {
	case 1:
		return 0, true
	case 2:
		return 1, true
	default:
		return 0, false
	}
}
