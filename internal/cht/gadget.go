package cht

import (
	"fmt"

	"repro/internal/model"
)

// GadgetKind identifies the decision-gadget shape (Figure 3).
type GadgetKind string

// The gadget shapes. Forks and hooks are the paper's Figure 3; input forks
// are the analogous shape at input-accepting steps, which arise in the EC
// variant where proposal values branch inside the single simulation tree
// (§4, footnote 2) — the deciding process is correct by the same argument as
// Lemma 8 (only it distinguishes the two branches).
const (
	GadgetFork      GadgetKind = "fork"
	GadgetHook      GadgetKind = "hook"
	GadgetInputFork GadgetKind = "input-fork"
)

// Gadget is a located decision gadget: its pivot node, shape, instance, and
// the deciding process (provably correct, Lemma 8).
type Gadget struct {
	Kind     GadgetKind
	Instance int
	Pivot    int // enumeration order of the pivot node
	Deciding model.ProcID
}

// String renders a description for logs.
func (g Gadget) String() string {
	return fmt.Sprintf("%s@node%d k=%d deciding=%v", g.Kind, g.Pivot, g.Instance, g.Deciding)
}

// forkKey groups step edges by (process, consumed message) ignoring the
// detector sample: two edges with the same key but different DAG vertices are
// "two different steps by the same process consuming the same message". All
// components are interned, so the key is a comparable integer struct instead
// of a formatted string.
type forkKey struct {
	kind    edgeKind
	q       model.ProcID
	from    model.ProcID
	payload int32
}

func (ex *Explorer) forkKeyOf(ed treeEdge) forkKey {
	q := ex.eng.dag.Vertex(int(ed.vertex)).P
	if ed.kind == edgeMsg {
		m := ex.eng.in.msgMeta(ed.msg)
		return forkKey{kind: edgeMsg, q: q, from: m.From, payload: m.Payload}
	}
	return forkKey{kind: edgeLambda, q: q}
}

// hookKey identifies a step (vertex, kind, message, input value) exactly, to
// match steps applicable at both ends of a hook's connecting edge.
type hookKey struct {
	vertex int32
	kind   edgeKind
	msg    int32
	ival   int8
}

// FindGadget searches the subtree of pivot for the smallest decision gadget
// with respect to instance k, in deterministic order. ok=false if the finite
// prefix contains none (the limit tree always does, Lemma 9).
func (ex *Explorer) FindGadget(pivot NodeID, k int) (Gadget, bool) {
	e := ex.eng
	sub := ex.Subtree(pivot)

	// Forks first (including input forks), in node order. Groups are scanned
	// in first-occurrence edge order, which is deterministic (edge lists are
	// generated in sorted successor order).
	groups := make(map[forkKey][]treeEdge)
	var keys []forkKey
	var inputs []treeEdge
	for _, nd := range sub {
		clear(groups)
		keys = keys[:0]
		inputs = inputs[:0]
		for _, ed := range e.nodes[nd].edges {
			if int(ed.vertex) >= ex.m {
				continue
			}
			if ed.kind == edgeInvoke {
				inputs = append(inputs, ed)
				continue
			}
			fk := ex.forkKeyOf(ed)
			if _, seen := groups[fk]; !seen {
				keys = append(keys, fk)
			}
			groups[fk] = append(groups[fk], ed)
		}
		// Classic fork: same (q, m), different detector sample, opposite
		// univalent children.
		for _, fk := range keys {
			if g, ok := ex.forkIn(nd, groups[fk], k, GadgetFork); ok {
				return g, true
			}
		}
		// Input fork: invocation steps with opposite univalent children.
		if g, ok := ex.forkIn(nd, inputs, k, GadgetInputFork); ok {
			return g, true
		}
	}

	// Hooks: S --e'--> S', and a step σ applicable at both S and S' whose two
	// applications are opposite univalent.
	byStep := make(map[hookKey]treeEdge)
	for _, nd := range sub {
		edges := e.nodes[nd].edges
		for _, ePrime := range edges {
			if int(ePrime.vertex) >= ex.m {
				continue
			}
			sPrime := ePrime.child
			clear(byStep)
			for _, ed := range edges {
				if int(ed.vertex) >= ex.m {
					continue
				}
				byStep[hookKey{ed.vertex, ed.kind, ed.msg, ed.ival}] = ed
			}
			for _, ed2 := range e.nodes[sPrime].edges {
				if int(ed2.vertex) >= ex.m {
					continue
				}
				ed1, ok := byStep[hookKey{ed2.vertex, ed2.kind, ed2.msg, ed2.ival}]
				if !ok {
					continue
				}
				x1, ok1 := ex.univalence(NodeID(ed1.child), k)
				x2, ok2 := ex.univalence(NodeID(ed2.child), k)
				if ok1 && ok2 && x1 != x2 {
					return Gadget{
						Kind:     GadgetHook,
						Instance: k,
						Pivot:    int(e.nodes[nd].order),
						Deciding: e.dag.Vertex(int(ed2.vertex)).P,
					}, true
				}
			}
		}
	}
	return Gadget{}, false
}

// forkIn looks for a pair of edges within eds with opposite univalent
// children.
func (ex *Explorer) forkIn(nd NodeID, eds []treeEdge, k int, kind GadgetKind) (Gadget, bool) {
	var zero, one *treeEdge
	for i := range eds {
		if x, ok := ex.univalence(NodeID(eds[i].child), k); ok {
			if x == 0 && zero == nil {
				zero = &eds[i]
			}
			if x == 1 && one == nil {
				one = &eds[i]
			}
		}
	}
	if zero != nil && one != nil {
		return Gadget{
			Kind:     kind,
			Instance: k,
			Pivot:    int(ex.eng.nodes[nd].order),
			Deciding: ex.eng.dag.Vertex(int(zero.vertex)).P,
		}, true
	}
	return Gadget{}, false
}

// univalence returns (x, true) if nd is (k, x)-valent.
func (ex *Explorer) univalence(nd NodeID, k int) (int, bool) {
	switch ex.KTag(nd, k) {
	case 1:
		return 0, true
	case 2:
		return 1, true
	default:
		return 0, false
	}
}
