package cht

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fd"
	"repro/internal/model"
)

// SimMsg is a message of the simulated algorithm A in transit.
type SimMsg struct {
	From, To model.ProcID
	Payload  string
}

func (m SimMsg) String() string {
	return fmt.Sprintf("%v->%v:%s", m.From, m.To, m.Payload)
}

// Decided is a response of the simulated algorithm: process returned Value
// to proposeEC_Instance.
type Decided struct {
	Instance int
	Value    int // 0 or 1
}

// Algorithm is a deterministic algorithm A solving (eventual) consensus with
// some failure detector D, in the form the simulation tree can execute
// exhaustively: states are canonical strings, steps are pure functions.
type Algorithm interface {
	// Name identifies the algorithm in logs.
	Name() string
	// MaxInstance is the number of consensus instances simulated (the L cap;
	// the paper's construction is unbounded, see DESIGN.md decision 4).
	MaxInstance() int
	// InitState is the state of process p before it invokes proposeEC_1.
	InitState(p model.ProcID, n int) string
	// Invoke applies proposeEC_instance(value) to the state, returning the
	// new state and messages to send.
	Invoke(p model.ProcID, n int, state string, instance, value int) (string, []SimMsg)
	// Step applies one atomic step: receive m (nil = λ), see detector value
	// d, transition, send messages, possibly return responses.
	Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided)
}

// EC4 is Algorithm 4 (EC from Ω) in simulatable form — the algorithm A the
// extraction is demonstrated on, with D the Ω detector itself (the identity
// case of "if D implements EC, Ω is extractable from D").
//
// State encoding: "c<count>/d<decidedUpTo>/r<recv>" where recv lists
// proc:inst:val triples sorted lexicographically.
type EC4 struct {
	L int
}

var _ Algorithm = (*EC4)(nil)

// NewEC4 returns the Algorithm 4 simulator capped at maxInstance instances.
func NewEC4(maxInstance int) *EC4 {
	if maxInstance < 1 {
		maxInstance = 1
	}
	return &EC4{L: maxInstance}
}

// Name implements Algorithm.
func (a *EC4) Name() string { return "Algorithm4-EC-from-Omega" }

// MaxInstance implements Algorithm.
func (a *EC4) MaxInstance() int { return a.L }

type ec4State struct {
	count   int
	decided int            // instances 1..decided have been responded to
	recv    map[string]int // "q:inst" → value
}

func (a *EC4) decode(s string) ec4State {
	st := ec4State{recv: make(map[string]int)}
	parts := strings.Split(s, "/")
	for _, part := range parts {
		switch {
		case strings.HasPrefix(part, "c"):
			st.count, _ = strconv.Atoi(part[1:])
		case strings.HasPrefix(part, "d"):
			st.decided, _ = strconv.Atoi(part[1:])
		case strings.HasPrefix(part, "r") && len(part) > 1:
			for _, ent := range strings.Split(part[1:], ",") {
				kv := strings.Split(ent, "=")
				if len(kv) == 2 {
					v, _ := strconv.Atoi(kv[1])
					st.recv[kv[0]] = v
				}
			}
		}
	}
	return st
}

func (a *EC4) encode(st ec4State) string {
	keys := make([]string, 0, len(st.recv))
	for k := range st.recv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ents := make([]string, 0, len(keys))
	for _, k := range keys {
		ents = append(ents, fmt.Sprintf("%s=%d", k, st.recv[k]))
	}
	return fmt.Sprintf("c%d/d%d/r%s", st.count, st.decided, strings.Join(ents, ","))
}

// InitState implements Algorithm.
func (a *EC4) InitState(model.ProcID, int) string {
	return a.encode(ec4State{recv: make(map[string]int)})
}

// Invoke implements Algorithm: count := ℓ; send promote(v, ℓ) to all.
func (a *EC4) Invoke(p model.ProcID, n int, state string, instance, value int) (string, []SimMsg) {
	st := a.decode(state)
	st.count = instance
	payload := fmt.Sprintf("%d:%d", instance, value)
	msgs := make([]SimMsg, 0, n)
	for _, q := range model.Procs(n) {
		msgs = append(msgs, SimMsg{From: p, To: q, Payload: payload})
	}
	return a.encode(st), msgs
}

// Step implements Algorithm.
func (a *EC4) Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided) {
	st := a.decode(state)
	if m != nil {
		// promote(v, ℓ) from m.From.
		var inst, val int
		if _, err := fmt.Sscanf(m.Payload, "%d:%d", &inst, &val); err == nil {
			key := fmt.Sprintf("%v:%d", m.From, inst)
			if _, dup := st.recv[key]; !dup {
				st.recv[key] = val
			}
		}
		return a.encode(st), nil, nil
	}
	// λ-step = local timeout: decide if the current leader's value arrived.
	if st.count == 0 || st.decided >= st.count {
		return state, nil, nil
	}
	leader, ok := fd.LeaderOf(d)
	if !ok {
		return state, nil, nil
	}
	v, have := st.recv[fmt.Sprintf("%v:%d", leader, st.count)]
	if !have {
		return state, nil, nil
	}
	st.decided = st.count
	return a.encode(st), nil, []Decided{{Instance: st.count, Value: v}}
}
