package cht

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fd"
	"repro/internal/model"
)

// SimMsg is a message of the simulated algorithm A in transit.
type SimMsg struct {
	From, To model.ProcID
	Payload  string
}

func (m SimMsg) String() string {
	return fmt.Sprintf("%v->%v:%s", m.From, m.To, m.Payload)
}

// Decided is a response of the simulated algorithm: process returned Value
// to proposeEC_Instance.
type Decided struct {
	Instance int
	Value    int // 0 or 1
}

// Algorithm is a deterministic algorithm A solving (eventual) consensus with
// some failure detector D, in the form the simulation tree can execute
// exhaustively: states are canonical strings, steps are pure functions.
type Algorithm interface {
	// Name identifies the algorithm in logs.
	Name() string
	// MaxInstance is the number of consensus instances simulated (the L cap;
	// the paper's construction is unbounded, see DESIGN.md decision 4).
	MaxInstance() int
	// InitState is the state of process p before it invokes proposeEC_1.
	InitState(p model.ProcID, n int) string
	// Invoke applies proposeEC_instance(value) to the state, returning the
	// new state and messages to send.
	Invoke(p model.ProcID, n int, state string, instance, value int) (string, []SimMsg)
	// Step applies one atomic step: receive m (nil = λ), see detector value
	// d, transition, send messages, possibly return responses.
	Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided)
}

// StructuredAlgorithm is an optional Algorithm fast path for the interned
// simulation-tree engine. The string methods (Step, Invoke) remain the
// reference implementation — canonical state strings define node identity and
// the deterministic enumeration order — but stepping through them costs a
// full decode/encode round-trip per simulated step. An algorithm that also
// implements StructuredAlgorithm lets the engine keep one decoded state per
// interned state ID and step on it directly: DecodeState runs at most once
// per distinct state ever reached (and not at all for states produced by
// StepStructured, whose structured result is cached under the new ID), and
// EncodeState runs only when a step actually changed the state.
//
// Contract (pinned by TestStructuredMatchesStringPath): for every reachable
// state s, StepStructured(p, n, DecodeState(n, s), m, d) must agree with
// Step(p, n, s, m, d) — same messages, same responses, and EncodeState of the
// structured result must equal the string result byte-for-byte. The
// structured state passed in MUST be treated as immutable: it is shared by
// every tree node holding that state ID, so a changing step returns a fresh
// value (copy-on-write) instead of mutating in place.
type StructuredAlgorithm interface {
	Algorithm
	// DecodeState parses a canonical state string into its structured form.
	DecodeState(n int, state string) any
	// EncodeState renders the canonical string of a structured state,
	// byte-identical to what the string path would have produced.
	EncodeState(st any) string
	// StepStructured applies one atomic step to the immutable structured
	// state, returning the successor (aliasing st if changed == false), the
	// messages sent, and any responses.
	StepStructured(p model.ProcID, n int, st any, m *SimMsg, d any) (next any, changed bool, sends []SimMsg, decs []Decided)
}

// EC4 is Algorithm 4 (EC from Ω) in simulatable form — the algorithm A the
// extraction is demonstrated on, with D the Ω detector itself (the identity
// case of "if D implements EC, Ω is extractable from D").
//
// State encoding: "c<count>/d<decidedUpTo>/r<recv>" where recv lists
// proc:inst:val triples sorted lexicographically.
type EC4 struct {
	L int
}

var (
	_ Algorithm           = (*EC4)(nil)
	_ StructuredAlgorithm = (*EC4)(nil)
)

// NewEC4 returns the Algorithm 4 simulator capped at maxInstance instances.
func NewEC4(maxInstance int) *EC4 {
	if maxInstance < 1 {
		maxInstance = 1
	}
	return &EC4{L: maxInstance}
}

// Name implements Algorithm.
func (a *EC4) Name() string { return "Algorithm4-EC-from-Omega" }

// MaxInstance implements Algorithm.
func (a *EC4) MaxInstance() int { return a.L }

type ec4State struct {
	count   int
	decided int            // instances 1..decided have been responded to
	recv    map[string]int // "q:inst" → value
}

func (a *EC4) decode(s string) ec4State {
	st := ec4State{recv: make(map[string]int)}
	parts := strings.Split(s, "/")
	for _, part := range parts {
		switch {
		case strings.HasPrefix(part, "c"):
			st.count, _ = strconv.Atoi(part[1:])
		case strings.HasPrefix(part, "d"):
			st.decided, _ = strconv.Atoi(part[1:])
		case strings.HasPrefix(part, "r") && len(part) > 1:
			for _, ent := range strings.Split(part[1:], ",") {
				kv := strings.Split(ent, "=")
				if len(kv) == 2 {
					v, _ := strconv.Atoi(kv[1])
					st.recv[kv[0]] = v
				}
			}
		}
	}
	return st
}

func (a *EC4) encode(st ec4State) string {
	keys := make([]string, 0, len(st.recv))
	for k := range st.recv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ents := make([]string, 0, len(keys))
	for _, k := range keys {
		ents = append(ents, fmt.Sprintf("%s=%d", k, st.recv[k]))
	}
	return fmt.Sprintf("c%d/d%d/r%s", st.count, st.decided, strings.Join(ents, ","))
}

// InitState implements Algorithm.
func (a *EC4) InitState(model.ProcID, int) string {
	return a.encode(ec4State{recv: make(map[string]int)})
}

// Invoke implements Algorithm: count := ℓ; send promote(v, ℓ) to all.
func (a *EC4) Invoke(p model.ProcID, n int, state string, instance, value int) (string, []SimMsg) {
	st := a.decode(state)
	st.count = instance
	payload := fmt.Sprintf("%d:%d", instance, value)
	msgs := make([]SimMsg, 0, n)
	for _, q := range model.Procs(n) {
		msgs = append(msgs, SimMsg{From: p, To: q, Payload: payload})
	}
	return a.encode(st), msgs
}

// Step implements Algorithm.
func (a *EC4) Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided) {
	st := a.decode(state)
	if m != nil {
		// promote(v, ℓ) from m.From.
		var inst, val int
		if _, err := fmt.Sscanf(m.Payload, "%d:%d", &inst, &val); err == nil {
			key := fmt.Sprintf("%v:%d", m.From, inst)
			if _, dup := st.recv[key]; !dup {
				st.recv[key] = val
			}
		}
		return a.encode(st), nil, nil
	}
	// λ-step = local timeout: decide if the current leader's value arrived.
	if st.count == 0 || st.decided >= st.count {
		return state, nil, nil
	}
	leader, ok := fd.LeaderOf(d)
	if !ok {
		return state, nil, nil
	}
	v, have := st.recv[fmt.Sprintf("%v:%d", leader, st.count)]
	if !have {
		return state, nil, nil
	}
	st.decided = st.count
	return a.encode(st), nil, []Decided{{Instance: st.count, Value: v}}
}

// ---------------------------------------------------------------------------
// StructuredAlgorithm fast path
// ---------------------------------------------------------------------------

// ec4Recv is one received promote, keyed "p<q>:<inst>" like the canonical
// string encoding.
type ec4Recv struct {
	key string
	val int
}

// ec4Struct is EC4's structured state: the same data as ec4State, but with
// the received promotes as a key-sorted slice, so EncodeState is a linear
// append and lookups need no map. Values are shared between tree nodes and
// MUST NOT be mutated; changing steps rebuild the slice (copy-on-write).
type ec4Struct struct {
	count   int
	decided int
	recv    []ec4Recv // sorted by key
}

func (s ec4Struct) find(key string) (int, bool) {
	lo, hi := 0, len(s.recv)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.recv[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.recv) && s.recv[lo].key == key {
		return s.recv[lo].val, true
	}
	return 0, false
}

// insert returns a fresh sorted slice with (key, val) added; the receiver's
// slice is left untouched.
func (s ec4Struct) insert(key string, val int) []ec4Recv {
	out := make([]ec4Recv, 0, len(s.recv)+1)
	i := 0
	for ; i < len(s.recv) && s.recv[i].key < key; i++ {
		out = append(out, s.recv[i])
	}
	out = append(out, ec4Recv{key: key, val: val})
	return append(out, s.recv[i:]...)
}

// DecodeState implements StructuredAlgorithm.
func (a *EC4) DecodeState(_ int, state string) any {
	st := a.decode(state)
	out := ec4Struct{count: st.count, decided: st.decided}
	if len(st.recv) > 0 {
		out.recv = make([]ec4Recv, 0, len(st.recv))
		for k, v := range st.recv {
			out.recv = append(out.recv, ec4Recv{key: k, val: v})
		}
		sort.Slice(out.recv, func(i, j int) bool { return out.recv[i].key < out.recv[j].key })
	}
	return out
}

// EncodeState implements StructuredAlgorithm, byte-identical to encode.
func (a *EC4) EncodeState(v any) string {
	st := v.(ec4Struct)
	b := make([]byte, 0, 16+16*len(st.recv))
	b = append(b, 'c')
	b = strconv.AppendInt(b, int64(st.count), 10)
	b = append(b, '/', 'd')
	b = strconv.AppendInt(b, int64(st.decided), 10)
	b = append(b, '/', 'r')
	for i, e := range st.recv {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, e.key...)
		b = append(b, '=')
		b = strconv.AppendInt(b, int64(e.val), 10)
	}
	return string(b)
}

// parsePromote parses the "inst:val" payload without fmt, with the same
// acceptance as the reference path's fmt.Sscanf(payload, "%d:%d"): %d skips
// leading spaces and reads an optional sign plus digits, ':' must match
// exactly, and trailing content after the second number is ignored (Sscanf
// does not require consuming the whole input). Keeping the two parsers
// agreeing on every payload — not just EC4's own "%d:%d" ones — is part of
// the StructuredAlgorithm equivalence contract.
func parsePromote(payload string) (inst, val int, ok bool) {
	inst, rest, ok := parseLeadingInt(payload)
	if !ok || len(rest) == 0 || rest[0] != ':' {
		return 0, 0, false
	}
	val, _, ok = parseLeadingInt(rest[1:])
	if !ok {
		return 0, 0, false
	}
	return inst, val, true
}

// parseLeadingInt consumes optional spaces, an optional sign, and a digit
// run, returning the value and the unconsumed remainder (the %d verb's input
// behavior).
func parseLeadingInt(s string) (v int, rest string, ok bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == digits {
		return 0, s, false
	}
	v, err := strconv.Atoi(s[start:i])
	if err != nil {
		return 0, s, false
	}
	return v, s[i:], true
}

// recvKey builds the canonical "p<q>:<inst>" key.
func recvKey(q model.ProcID, inst int) string {
	b := make([]byte, 0, 8)
	b = append(b, 'p')
	b = strconv.AppendInt(b, int64(q), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(inst), 10)
	return string(b)
}

// StepStructured implements StructuredAlgorithm: the same transition as Step,
// computed without the decode/encode round-trip. Unchanged steps (duplicate
// promotes, premature timeouts) alias the input state and report changed ==
// false, so the engine reuses the parent's interned state ID untouched.
func (a *EC4) StepStructured(p model.ProcID, n int, v any, m *SimMsg, d any) (any, bool, []SimMsg, []Decided) {
	st := v.(ec4Struct)
	if m != nil {
		inst, val, ok := parsePromote(m.Payload)
		if !ok {
			return v, false, nil, nil
		}
		key := recvKey(m.From, inst)
		if _, dup := st.find(key); dup {
			return v, false, nil, nil
		}
		next := st
		next.recv = st.insert(key, val)
		return next, true, nil, nil
	}
	if st.count == 0 || st.decided >= st.count {
		return v, false, nil, nil
	}
	leader, ok := fd.LeaderOf(d)
	if !ok {
		return v, false, nil, nil
	}
	val, have := st.find(recvKey(leader, st.count))
	if !have {
		return v, false, nil, nil
	}
	next := st
	next.decided = st.count
	return next, true, nil, []Decided{{Instance: st.count, Value: val}}
}
