// Package cht implements the paper's generalization of the
// Chandra–Hadzilacos–Toueg ("CHT") reduction: from any algorithm A solving
// eventual consensus with a failure detector D, emulate Ω (§4, Lemma 1), and
// the classical consensus variant it extends (Appendix B).
//
// The machinery, mirroring the paper's structure:
//
//   - DAG (Figure 1): an ever-growing directed acyclic graph of failure
//     detector samples [q, d, k] whose edges reflect the temporal order of
//     the samples. Built here by simulating the communication task of the
//     reduction algorithm (periodic sampling + gossip) against a failure
//     pattern and a detector history.
//   - Simulation tree (Figure 2, §4): all schedules of A compatible with
//     paths through the DAG, with proposal values branching at invocation
//     points (the paper's input histories).
//   - k-tags / valency (§4): tags {0,1,⊥} per consensus instance k, computed
//     over all descendants; k-bivalent vertices drive the extraction.
//   - Critical index (Appendix B.6) for the classical variant's simulation
//     forest over initial configurations I^0..I^n.
//   - Decision gadgets (Figures 3–5): forks and hooks whose deciding process
//     is provably correct (Lemma 8).
//   - Extraction (Figure 6 / Algorithm 3): every process periodically
//     recomputes its DAG view and outputs a leader estimate; estimates
//     stabilize on the same correct process.
//
// The paper's construction is a limit argument over infinite DAGs and trees;
// this implementation reproduces it over monotonically growing finite DAGs
// and exposes the stabilization behavior the proof describes (see DESIGN.md,
// decision 4).
//
// # Execution engine
//
// The simulation trees are executed on an interned engine (intern.go,
// tree.go). Algorithm states, message payloads, whole messages, and whole
// configurations are mapped to dense int32 IDs by an Interner, so a
// configuration is a value of small integer slices, node deduplication is an
// integer-key map lookup (configuration ID, last DAG vertex), and the
// fmt-formatted canonical strings survive only at trace/debug boundaries:
// the per-node encoding that fixes the deterministic enumeration order is
// rendered once per unique node, never per simulated step.
//
// Algorithms step through the string-based Algorithm interface — the
// reference semantics — or, when they also implement StructuredAlgorithm,
// through a structured fast path: the engine caches one decoded state per
// interned state ID, steps on it directly, and re-encodes only when a step
// actually changed the state. Equivalence of the two paths is pinned by
// tests (equivalence_test.go).
//
// Trees grow incrementally (TreeCache). This is sound because the reduction
// only ever consumes monotone prefixes of one growing DAG (the paper's
// ever-growing Υ over G): BuildDAG adds edges only into newly created
// vertices, and every tree edge strictly increases the DAG vertex index, so
// (a) the simulation tree over the first m vertices consists exactly of the
// nodes whose last step uses a vertex < m, (b) growing the DAG appends
// one-step extensions over new vertices but never revisits or reorders the
// settled prefix, and (c) the deterministic enumeration (by last vertex,
// then canonical encoding) is append-only. A per-prefix view therefore needs
// only a fresh valency (k-tag) pass, not a re-exploration; EmulateOmega
// carries one TreeCache per forest tree across all rounds and lagged
// per-process views. The DAG builder itself batches its detector sampling
// through fd.Cached.ValuesAt, so re-building a grown DAG re-reads history
// segments from the cache instead of recomputing them.
package cht

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/fd"
	"repro/internal/model"
)

// Vertex is a failure-detector sample [q, d, k]: process q obtained value d
// from its k-th query. Index is the global creation order (the paper's
// temporal order τ(v)), which extraction uses to order tree vertices.
type Vertex struct {
	Index int
	P     model.ProcID
	D     any
	K     int
	Time  model.Time // τ(v): the global time of the sample
}

// String renders "[p2, d, 3]".
func (v Vertex) String() string {
	return fmt.Sprintf("[%v, %v, %d]", v.P, v.D, v.K)
}

// DAG is a finite prefix of the limit DAG G of the reduction's communication
// task. It is transitively closed by construction.
type DAG struct {
	vertices []Vertex
	preds    [][]int // preds[i]: sorted indices with an edge into i
	succs    [][]int // succs[i]: sorted indices reachable by one edge from i
	byProc   map[model.ProcID][]int
}

// Len returns the number of vertices.
func (g *DAG) Len() int { return len(g.vertices) }

// Vertex returns the vertex with the given index.
func (g *DAG) Vertex(i int) Vertex { return g.vertices[i] }

// Succs returns the indices of the successors of vertex i (do not modify).
func (g *DAG) Succs(i int) []int { return g.succs[i] }

// Preds returns the indices of the predecessors of vertex i (do not modify).
func (g *DAG) Preds(i int) []int { return g.preds[i] }

// ByProc returns the vertex indices of process p in query order.
func (g *DAG) ByProc(p model.ProcID) []int { return g.byProc[p] }

// Roots returns the vertices with no predecessors.
func (g *DAG) Roots() []int {
	var out []int
	for i := range g.vertices {
		if len(g.preds[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// HasEdge reports whether there is an edge i → j.
func (g *DAG) HasEdge(i, j int) bool {
	k := sort.SearchInts(g.succs[i], j)
	return k < len(g.succs[i]) && g.succs[i][k] == j
}

// Prefix returns the sub-DAG induced by the first m vertices (a process's
// lagged view of the growing limit DAG). Prefixes of a transitively closed
// DAG built by sampleBuilder are themselves valid DAGs.
func (g *DAG) Prefix(m int) *DAG {
	if m > len(g.vertices) {
		m = len(g.vertices)
	}
	sub := &DAG{
		vertices: g.vertices[:m],
		preds:    make([][]int, m),
		succs:    make([][]int, m),
		byProc:   make(map[model.ProcID][]int),
	}
	for i := 0; i < m; i++ {
		for _, p := range g.preds[i] {
			if p < m {
				sub.preds[i] = append(sub.preds[i], p)
			}
		}
		for _, s := range g.succs[i] {
			if s < m {
				sub.succs[i] = append(sub.succs[i], s)
			}
		}
		sub.byProc[g.vertices[i].P] = append(sub.byProc[g.vertices[i].P], i)
	}
	return sub
}

// String renders a compact description of the DAG.
func (g *DAG) String() string {
	var b strings.Builder
	for i, v := range g.vertices {
		fmt.Fprintf(&b, "%d:%v", i, v)
		if len(g.succs[i]) > 0 {
			fmt.Fprintf(&b, "->%v", g.succs[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BuildOptions configure the communication-task simulation that grows a DAG.
type BuildOptions struct {
	// SamplesPerProcess is how many failure-detector queries each correct
	// process performs (the k range).
	SamplesPerProcess int
	// QueryInterval is the global time between consecutive sampling steps.
	// Default 10.
	QueryInterval model.Time
	// MaxLag bounds how stale a process's knowledge of other processes'
	// samples may be, in sampling steps (gossip delay). Default 1.
	MaxLag int
	// Seed drives the (deterministic) gossip-delay choices.
	Seed int64
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.SamplesPerProcess <= 0 {
		o.SamplesPerProcess = 3
	}
	if o.QueryInterval <= 0 {
		o.QueryInterval = 10
	}
	if o.MaxLag < 0 {
		o.MaxLag = 0
	}
	if o.MaxLag == 0 {
		o.MaxLag = 1
	}
	return o
}

// BuildDAG simulates the communication task of Figure 1 against the failure
// pattern and detector history: processes take sampling steps round-robin
// (skipping crashed ones); at each step the process queries D at the current
// global time, connects every vertex it currently knows (its own vertices
// plus every vertex older than a bounded gossip lag) to the new vertex, and
// the new vertex becomes available to others after the lag.
//
// The builder is the reduction's heaviest detector consumer: it wraps det in
// fd.Cached (a no-op if the caller already did, as EmulateOmega does once per
// emulation so rounds share segments) and batch-queries each sweep's samples
// through the cache's ValuesAt before materializing vertices. Predecessor
// sets are assembled without scratch maps: a process's knowledge is the
// contiguous gossip window [0, cutoff) plus its own later samples, already
// sorted.
//
// The resulting DAG satisfies the paper's properties (1)–(4) on its finite
// prefix: samples are consistent with H and F, edges respect temporal order,
// consecutive samples of one process are connected, and the graph is
// transitively closed (knowledge sets are downward closed).
func BuildDAG(fp *model.FailurePattern, det fd.Detector, opts BuildOptions) *DAG {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &DAG{byProc: make(map[model.ProcID][]int)}
	cached := fd.NewCached(det)

	type known struct {
		cutoff int // knows all vertices with Index < cutoff
		own    []int
	}
	n := fp.N()
	procs := model.Procs(n)
	views := make(map[model.ProcID]*known, n)
	for _, p := range procs {
		views[p] = &known{}
	}

	// Per-sweep sampling scratch, reused across sweeps.
	alive := make([]model.ProcID, 0, n)
	times := make([]model.Time, 0, n)
	samples := make([]any, 0, n)

	now := model.Time(0)
	for s := 0; s < opts.SamplesPerProcess; s++ {
		// Batch the sweep's detector queries: the clock advances per process
		// slot whether or not the process is alive, exactly as the serial
		// loop did, and crashed processes take no sample.
		alive, times = alive[:0], times[:0]
		t := now
		for _, p := range procs {
			t += opts.QueryInterval
			if !fp.Crashed(p, t) {
				alive = append(alive, p)
				times = append(times, t)
			}
		}
		samples = cached.ValuesAt(alive, times, samples)

		si := 0
		for _, p := range procs {
			now += opts.QueryInterval
			if fp.Crashed(p, now) {
				continue
			}
			v := views[p]
			// Gossip: advance the cutoff to within MaxLag (in vertices) of the
			// present, at a random but monotone rate.
			maxCut := len(g.vertices)
			minCut := maxCut - opts.MaxLag*n
			if minCut < v.cutoff {
				minCut = v.cutoff
			}
			if maxCut > minCut {
				v.cutoff = minCut + rng.Intn(maxCut-minCut+1)
			} else {
				v.cutoff = maxCut
			}

			idx := len(g.vertices)
			g.vertices = append(g.vertices, Vertex{
				Index: idx,
				P:     p,
				D:     samples[si],
				K:     len(v.own) + 1,
				Time:  now,
			})
			si++
			g.preds = append(g.preds, nil)
			g.succs = append(g.succs, nil)
			g.byProc[p] = append(g.byProc[p], idx)

			// Edges from every known vertex: the contiguous window
			// [0, cutoff) plus own samples at or past the cutoff. own is
			// ascending, so the union is already sorted — no set, no sort.
			preds := make([]int, 0, v.cutoff+len(v.own))
			for i := 0; i < v.cutoff; i++ {
				preds = append(preds, i)
			}
			for _, o := range v.own {
				if o >= v.cutoff {
					preds = append(preds, o)
				}
			}
			g.preds[idx] = preds
			for _, i := range preds {
				g.succs[i] = append(g.succs[i], idx)
			}
			v.own = append(v.own, idx)
		}
	}
	// Successors accumulate in creation order, which is ascending already;
	// keep the normalization pass as a cheap invariant guard.
	for i := range g.succs {
		sort.Ints(g.succs[i])
	}
	return g
}

// CheckProperties verifies the paper's DAG properties (1)–(3) on g for the
// given failure pattern and detector (property (4) is a limit property,
// witnessed by growth across rounds). It returns a list of violations.
func (g *DAG) CheckProperties(fp *model.FailurePattern, det fd.Detector) []string {
	var bad []string
	for i, v := range g.vertices {
		// (1a) sample consistent with F and H.
		if fp.Crashed(v.P, v.Time) {
			bad = append(bad, fmt.Sprintf("vertex %d: %v crashed at sample time %d", i, v.P, v.Time))
		}
		if got := det.Value(v.P, v.Time); fmt.Sprint(got) != fmt.Sprint(v.D) {
			bad = append(bad, fmt.Sprintf("vertex %d: sample %v != H(%v,%d)=%v", i, v.D, v.P, v.Time, got))
		}
		// (1b) edges respect temporal order.
		for _, j := range g.succs[i] {
			if g.vertices[j].Time <= v.Time {
				bad = append(bad, fmt.Sprintf("edge %d->%d violates temporal order", i, j))
			}
		}
	}
	// (2) consecutive samples of one process are connected.
	for p, idxs := range g.byProc {
		for x := 0; x+1 < len(idxs); x++ {
			if !g.HasEdge(idxs[x], idxs[x+1]) {
				bad = append(bad, fmt.Sprintf("%v: samples k=%d,k=%d not connected", p, x+1, x+2))
			}
		}
	}
	// (3) transitivity.
	for i := range g.vertices {
		for _, j := range g.succs[i] {
			for _, l := range g.succs[j] {
				if !g.HasEdge(i, l) {
					bad = append(bad, fmt.Sprintf("transitivity broken: %d->%d->%d but no %d->%d", i, j, l, i, l))
				}
			}
		}
	}
	return bad
}
