// Package cht implements the paper's generalization of the
// Chandra–Hadzilacos–Toueg ("CHT") reduction: from any algorithm A solving
// eventual consensus with a failure detector D, emulate Ω (§4, Lemma 1), and
// the classical consensus variant it extends (Appendix B).
//
// The machinery, mirroring the paper's structure:
//
//   - DAG (Figure 1): an ever-growing directed acyclic graph of failure
//     detector samples [q, d, k] whose edges reflect the temporal order of
//     the samples. Built here by simulating the communication task of the
//     reduction algorithm (periodic sampling + gossip) against a failure
//     pattern and a detector history.
//   - Simulation tree (Figure 2, §4): all schedules of A compatible with
//     paths through the DAG, with proposal values branching at invocation
//     points (the paper's input histories).
//   - k-tags / valency (§4): tags {0,1,⊥} per consensus instance k, computed
//     over all descendants; k-bivalent vertices drive the extraction.
//   - Critical index (Appendix B.6) for the classical variant's simulation
//     forest over initial configurations I^0..I^n.
//   - Decision gadgets (Figures 3–5): forks and hooks whose deciding process
//     is provably correct (Lemma 8).
//   - Extraction (Figure 6 / Algorithm 3): every process periodically
//     recomputes its DAG view and outputs a leader estimate; estimates
//     stabilize on the same correct process.
//
// The paper's construction is a limit argument over infinite DAGs and trees;
// this implementation reproduces it over monotonically growing finite DAGs
// and exposes the stabilization behavior the proof describes (see DESIGN.md,
// decision 4).
package cht

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/fd"
	"repro/internal/model"
)

// Vertex is a failure-detector sample [q, d, k]: process q obtained value d
// from its k-th query. Index is the global creation order (the paper's
// temporal order τ(v)), which extraction uses to order tree vertices.
type Vertex struct {
	Index int
	P     model.ProcID
	D     any
	K     int
	Time  model.Time // τ(v): the global time of the sample
}

// String renders "[p2, d, 3]".
func (v Vertex) String() string {
	return fmt.Sprintf("[%v, %v, %d]", v.P, v.D, v.K)
}

// DAG is a finite prefix of the limit DAG G of the reduction's communication
// task. It is transitively closed by construction.
type DAG struct {
	vertices []Vertex
	preds    [][]int // preds[i]: sorted indices with an edge into i
	succs    [][]int // succs[i]: sorted indices reachable by one edge from i
	byProc   map[model.ProcID][]int
}

// Len returns the number of vertices.
func (g *DAG) Len() int { return len(g.vertices) }

// Vertex returns the vertex with the given index.
func (g *DAG) Vertex(i int) Vertex { return g.vertices[i] }

// Succs returns the indices of the successors of vertex i (do not modify).
func (g *DAG) Succs(i int) []int { return g.succs[i] }

// Preds returns the indices of the predecessors of vertex i (do not modify).
func (g *DAG) Preds(i int) []int { return g.preds[i] }

// ByProc returns the vertex indices of process p in query order.
func (g *DAG) ByProc(p model.ProcID) []int { return g.byProc[p] }

// Roots returns the vertices with no predecessors.
func (g *DAG) Roots() []int {
	var out []int
	for i := range g.vertices {
		if len(g.preds[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// HasEdge reports whether there is an edge i → j.
func (g *DAG) HasEdge(i, j int) bool {
	k := sort.SearchInts(g.succs[i], j)
	return k < len(g.succs[i]) && g.succs[i][k] == j
}

// Prefix returns the sub-DAG induced by the first m vertices (a process's
// lagged view of the growing limit DAG). Prefixes of a transitively closed
// DAG built by sampleBuilder are themselves valid DAGs.
func (g *DAG) Prefix(m int) *DAG {
	if m > len(g.vertices) {
		m = len(g.vertices)
	}
	sub := &DAG{
		vertices: g.vertices[:m],
		preds:    make([][]int, m),
		succs:    make([][]int, m),
		byProc:   make(map[model.ProcID][]int),
	}
	for i := 0; i < m; i++ {
		for _, p := range g.preds[i] {
			if p < m {
				sub.preds[i] = append(sub.preds[i], p)
			}
		}
		for _, s := range g.succs[i] {
			if s < m {
				sub.succs[i] = append(sub.succs[i], s)
			}
		}
		sub.byProc[g.vertices[i].P] = append(sub.byProc[g.vertices[i].P], i)
	}
	return sub
}

// String renders a compact description of the DAG.
func (g *DAG) String() string {
	var b strings.Builder
	for i, v := range g.vertices {
		fmt.Fprintf(&b, "%d:%v", i, v)
		if len(g.succs[i]) > 0 {
			fmt.Fprintf(&b, "->%v", g.succs[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BuildOptions configure the communication-task simulation that grows a DAG.
type BuildOptions struct {
	// SamplesPerProcess is how many failure-detector queries each correct
	// process performs (the k range).
	SamplesPerProcess int
	// QueryInterval is the global time between consecutive sampling steps.
	// Default 10.
	QueryInterval model.Time
	// MaxLag bounds how stale a process's knowledge of other processes'
	// samples may be, in sampling steps (gossip delay). Default 1.
	MaxLag int
	// Seed drives the (deterministic) gossip-delay choices.
	Seed int64
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.SamplesPerProcess <= 0 {
		o.SamplesPerProcess = 3
	}
	if o.QueryInterval <= 0 {
		o.QueryInterval = 10
	}
	if o.MaxLag < 0 {
		o.MaxLag = 0
	}
	if o.MaxLag == 0 {
		o.MaxLag = 1
	}
	return o
}

// BuildDAG simulates the communication task of Figure 1 against the failure
// pattern and detector history: processes take sampling steps round-robin
// (skipping crashed ones); at each step the process queries D at the current
// global time, connects every vertex it currently knows (its own vertices
// plus every vertex older than a bounded gossip lag) to the new vertex, and
// the new vertex becomes available to others after the lag.
//
// The resulting DAG satisfies the paper's properties (1)–(4) on its finite
// prefix: samples are consistent with H and F, edges respect temporal order,
// consecutive samples of one process are connected, and the graph is
// transitively closed (knowledge sets are downward closed).
func BuildDAG(fp *model.FailurePattern, det fd.Detector, opts BuildOptions) *DAG {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &DAG{byProc: make(map[model.ProcID][]int)}

	type known struct {
		cutoff int // knows all vertices with Index < cutoff
		own    []int
	}
	views := make(map[model.ProcID]*known, fp.N())
	for _, p := range model.Procs(fp.N()) {
		views[p] = &known{}
	}

	now := model.Time(0)
	for s := 0; s < opts.SamplesPerProcess; s++ {
		for _, p := range model.Procs(fp.N()) {
			now += opts.QueryInterval
			if fp.Crashed(p, now) {
				continue
			}
			v := views[p]
			// Gossip: advance the cutoff to within MaxLag (in vertices) of the
			// present, at a random but monotone rate.
			maxCut := len(g.vertices)
			minCut := maxCut - opts.MaxLag*fp.N()
			if minCut < v.cutoff {
				minCut = v.cutoff
			}
			if maxCut > minCut {
				v.cutoff = minCut + rng.Intn(maxCut-minCut+1)
			} else {
				v.cutoff = maxCut
			}

			idx := len(g.vertices)
			g.vertices = append(g.vertices, Vertex{
				Index: idx,
				P:     p,
				D:     det.Value(p, now),
				K:     len(v.own) + 1,
				Time:  now,
			})
			g.preds = append(g.preds, nil)
			g.succs = append(g.succs, nil)
			g.byProc[p] = append(g.byProc[p], idx)

			// Edges from every known vertex: all indices < cutoff, plus own.
			seen := make(map[int]bool, v.cutoff+len(v.own))
			for i := 0; i < v.cutoff; i++ {
				seen[i] = true
			}
			for _, o := range v.own {
				seen[o] = true
			}
			preds := make([]int, 0, len(seen))
			for i := range seen {
				preds = append(preds, i)
			}
			sort.Ints(preds)
			for _, i := range preds {
				g.preds[idx] = append(g.preds[idx], i)
				g.succs[i] = append(g.succs[i], idx)
			}
			v.own = append(v.own, idx)
		}
	}
	for i := range g.succs {
		sort.Ints(g.succs[i])
	}
	return g
}

// CheckProperties verifies the paper's DAG properties (1)–(3) on g for the
// given failure pattern and detector (property (4) is a limit property,
// witnessed by growth across rounds). It returns a list of violations.
func (g *DAG) CheckProperties(fp *model.FailurePattern, det fd.Detector) []string {
	var bad []string
	for i, v := range g.vertices {
		// (1a) sample consistent with F and H.
		if fp.Crashed(v.P, v.Time) {
			bad = append(bad, fmt.Sprintf("vertex %d: %v crashed at sample time %d", i, v.P, v.Time))
		}
		if got := det.Value(v.P, v.Time); fmt.Sprint(got) != fmt.Sprint(v.D) {
			bad = append(bad, fmt.Sprintf("vertex %d: sample %v != H(%v,%d)=%v", i, v.D, v.P, v.Time, got))
		}
		// (1b) edges respect temporal order.
		for _, j := range g.succs[i] {
			if g.vertices[j].Time <= v.Time {
				bad = append(bad, fmt.Sprintf("edge %d->%d violates temporal order", i, j))
			}
		}
	}
	// (2) consecutive samples of one process are connected.
	for p, idxs := range g.byProc {
		for x := 0; x+1 < len(idxs); x++ {
			if !g.HasEdge(idxs[x], idxs[x+1]) {
				bad = append(bad, fmt.Sprintf("%v: samples k=%d,k=%d not connected", p, x+1, x+2))
			}
		}
	}
	// (3) transitivity.
	for i := range g.vertices {
		for _, j := range g.succs[i] {
			for _, l := range g.succs[j] {
				if !g.HasEdge(i, l) {
					bad = append(bad, fmt.Sprintf("transitivity broken: %d->%d->%d but no %d->%d", i, j, l, i, l))
				}
			}
		}
	}
	return bad
}
