package cht

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

func TestBuildDAGProperties(t *testing.T) {
	fp := model.NewFailurePattern(3)
	fp.Crash(3, 45) // crashes mid-construction
	det := fd.NewOmegaEventual(fp, 1, 60)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 7})
	if g.Len() == 0 {
		t.Fatal("empty DAG")
	}
	if bad := g.CheckProperties(fp, det); len(bad) != 0 {
		t.Fatalf("DAG properties violated: %v", bad)
	}
	// Crashed process stops sampling.
	if got := len(g.ByProc(3)); got >= 4 {
		t.Errorf("crashed p3 has %d samples, want < 4", got)
	}
	// Correct processes sample fully.
	for _, p := range []model.ProcID{1, 2} {
		if got := len(g.ByProc(p)); got != 4 {
			t.Errorf("%v has %d samples, want 4", p, got)
		}
	}
}

func TestDAGPrefixIsValid(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 5, Seed: 3})
	for m := 1; m <= g.Len(); m++ {
		sub := g.Prefix(m)
		if sub.Len() != m {
			t.Fatalf("Prefix(%d).Len() = %d", m, sub.Len())
		}
		if bad := sub.CheckProperties(fp, det); len(bad) != 0 {
			t.Fatalf("prefix %d invalid: %v", m, bad)
		}
	}
}

func TestDAGMonotoneGrowth(t *testing.T) {
	// Same seed, more samples: the smaller DAG must be a prefix of the larger
	// (the reduction's ever-growing G).
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 2)
	small := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 11})
	large := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 5, Seed: 11})
	if small.Len() >= large.Len() {
		t.Fatal("larger build must add vertices")
	}
	for i := 0; i < small.Len(); i++ {
		a, b := small.Vertex(i), large.Vertex(i)
		if a.P != b.P || a.K != b.K || a.Time != b.Time {
			t.Fatalf("vertex %d differs between growth stages: %v vs %v", i, a, b)
		}
	}
}

func TestEC4StateRoundtrip(t *testing.T) {
	a := NewEC4(2)
	s0 := a.InitState(1, 2)
	s1, msgs := a.Invoke(1, 2, s0, 1, 1)
	if len(msgs) != 2 {
		t.Fatalf("invoke must promote to all: %v", msgs)
	}
	// Deliver own promote, then decide on a λ-step with leader p1.
	s2, _, dec := a.Step(1, 2, s1, &SimMsg{From: 1, To: 1, Payload: "1:1"}, nil)
	if len(dec) != 0 {
		t.Fatal("receive step must not decide")
	}
	s3, _, dec := a.Step(1, 2, s2, nil, fd.OmegaValue(1))
	if len(dec) != 1 || dec[0].Instance != 1 || dec[0].Value != 1 {
		t.Fatalf("λ-step with leader's value must decide 1: %v", dec)
	}
	// Deciding again must be a no-op.
	_, _, dec = a.Step(1, 2, s3, nil, fd.OmegaValue(1))
	if len(dec) != 0 {
		t.Fatal("double decision")
	}
	// Unknown leader value: no decision.
	_, _, dec = a.Step(1, 2, s2, nil, fd.OmegaValue(2))
	if len(dec) != 0 {
		t.Fatal("must not decide without the leader's promote")
	}
}

// stableDAG builds a small failure-free DAG with a stable leader.
func stableDAG(n int, leader model.ProcID, samples int) (*model.FailurePattern, *DAG) {
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, leader)
	return fp, BuildDAG(fp, det, BuildOptions{SamplesPerProcess: samples, Seed: 5})
}

func TestClassicalExtractionStableLeader(t *testing.T) {
	// With D = stable Ω, the consensus outcome is fixed by the leader's
	// input, so the critical index is univalent and equals the leader:
	// extraction must output exactly the leader.
	for _, leader := range []model.ProcID{1, 2} {
		_, g := stableDAG(2, leader, 3)
		ext, err := ExtractClassical(NewEC4(1), 2, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Found {
			t.Fatalf("leader %v: extraction found nothing", leader)
		}
		if ext.Leader != leader {
			t.Fatalf("leader %v: extracted %v via %s", leader, ext.Leader, ext.How)
		}
		if ext.How != "univalent-critical" {
			t.Errorf("expected univalent critical, got %s", ext.How)
		}
		if ext.CriticalIndex != int(leader) {
			t.Errorf("critical index = %d, want %d", ext.CriticalIndex, int(leader))
		}
	}
}

func TestClassicalExtractionThreeProcs(t *testing.T) {
	// A decision takes three steps of one process (invoke, receive the
	// leader's promote, λ-decide), so each process needs >= 3 samples.
	for _, leader := range []model.ProcID{1, 2, 3} {
		_, g := stableDAG(3, leader, 3)
		ext, err := ExtractClassical(NewEC4(1), 3, g, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Found || ext.Leader != leader {
			t.Fatalf("leader %v: got %+v", leader, ext)
		}
	}
}

// waitP is a one-shot 2-process consensus algorithm using the perfect
// detector P (range: sets of suspected processes): broadcast your input,
// wait until you hold the input of every unsuspected process, then decide
// the smallest-ID input you HOLD (a crashed process's input still counts if
// it arrived in time). For n = 2 this solves consensus with P, and a mid-DAG
// crash makes the simulation forest genuinely bivalent: whether the survivor
// receives the crashed process's input before suspecting it decides the
// outcome — the classical decision-gadget scenario (Figures 3–5).
type waitP struct{}

func (waitP) Name() string                       { return "wait-for-unsuspected(P)" }
func (waitP) MaxInstance() int                   { return 1 }
func (waitP) InitState(model.ProcID, int) string { return "u//" }

func (waitP) Invoke(p model.ProcID, n int, state string, _, value int) (string, []SimMsg) {
	msgs := make([]SimMsg, 0, n)
	payload := fmt.Sprintf("%d:%d", int(p), value)
	for _, q := range model.Procs(n) {
		msgs = append(msgs, SimMsg{From: p, To: q, Payload: payload})
	}
	return fmt.Sprintf("u/%d/", value), msgs
}

func (waitP) Step(p model.ProcID, n int, state string, m *SimMsg, d any) (string, []SimMsg, []Decided) {
	parts := strings.SplitN(state, "/", 3)
	own, recvStr := parts[1], parts[2]
	if own == "" || strings.HasPrefix(parts[0], "D") {
		return state, nil, nil // not invoked yet, or already decided
	}
	recv := map[int]int{}
	if recvStr != "" {
		for _, ent := range strings.Split(recvStr, ",") {
			var q, v int
			fmt.Sscanf(ent, "%d:%d", &q, &v)
			recv[q] = v
		}
	}
	if m != nil {
		var q, v int
		fmt.Sscanf(m.Payload, "%d:%d", &q, &v)
		recv[q] = v
		return encodeWaitP("u", own, recv), nil, nil
	}
	// λ-step: wait-set = unsuspected processes; decide when all arrived.
	suspects, ok := d.(fd.SuspectValue)
	if !ok {
		return state, nil, nil
	}
	suspected := map[model.ProcID]bool{}
	for _, s := range suspects {
		suspected[s] = true
	}
	ownV, _ := strconv.Atoi(own)
	recv[int(p)] = ownV
	for _, q := range model.Procs(n) {
		if suspected[q] {
			continue
		}
		if _, have := recv[int(q)]; !have {
			return encodeWaitP("u", own, recv), nil, nil // still waiting
		}
	}
	// Decide the smallest-ID input held, including suspected senders' inputs.
	decideFrom := int(p)
	for q := range recv {
		if q < decideFrom {
			decideFrom = q
		}
	}
	return encodeWaitP("D", own, recv), nil, []Decided{{Instance: 1, Value: recv[decideFrom]}}
}

func encodeWaitP(tag, own string, recv map[int]int) string {
	keys := make([]int, 0, len(recv))
	for k := range recv {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	ents := make([]string, 0, len(keys))
	for _, k := range keys {
		ents = append(ents, fmt.Sprintf("%d:%d", k, recv[k]))
	}
	return fmt.Sprintf("%s/%s/%s", tag, own, strings.Join(ents, ","))
}

func TestClassicalExtractionBivalentGadget(t *testing.T) {
	// p1 crashes mid-construction; D = P. Υ^1 (p1 proposes 1, p2 proposes 0)
	// is bivalent: p2 decides 1 if it receives p1's input before suspecting
	// it, 0 otherwise. The extraction must go through a decision gadget and
	// its deciding process must be correct (= p2).
	fp := model.NewFailurePattern(2)
	fp.Crash(1, 35) // after p1's second sample (samples at t=10,30,50,...)
	det := fd.NewPerfect(fp)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 9})
	ext, err := ExtractClassical(waitP{}, 2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Found {
		t.Fatal("no gadget found in bivalent tree")
	}
	if ext.How == "univalent-critical" {
		t.Fatalf("expected a decision gadget, got %s", ext.How)
	}
	if ext.Leader != 2 {
		t.Fatalf("extracted %v via %s, want the survivor p2", ext.Leader, ext.How)
	}
	t.Logf("extracted %v via %s (critical index %d, %d nodes)", ext.Leader, ext.How, ext.CriticalIndex, ext.Nodes)
}

func TestECExtractionFindsCorrectLeader(t *testing.T) {
	// The paper's §4 variant: algorithm = EC (Algorithm 4, 2 instances),
	// detector = eventual Ω. The first k-bivalent vertex and its gadget must
	// yield a correct process.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 1, 35)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 3, Seed: 13})
	ext, err := ExtractEC(NewEC4(2), 2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Found {
		t.Fatal("EC extraction found nothing")
	}
	if !fp.IsCorrect(ext.Leader) {
		t.Fatalf("extracted faulty process %v", ext.Leader)
	}
	t.Logf("extracted %v via %s at instance %d (%d nodes)", ext.Leader, ext.How, ext.Instance, ext.Nodes)
}

func TestECExtractionStableOmegaIsInputDriven(t *testing.T) {
	// With a stable-leader detector the outcome depends only on the leader's
	// proposals: bivalence comes from input branching, and the gadget's
	// deciding process must be the leader itself.
	for _, leader := range []model.ProcID{1, 2} {
		_, g := stableDAG(2, leader, 3)
		ext, err := ExtractEC(NewEC4(2), 2, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Found {
			t.Fatalf("leader %v: nothing found", leader)
		}
		if ext.Leader != leader {
			t.Fatalf("leader %v: extracted %v via %s", leader, ext.Leader, ext.How)
		}
	}
}

func TestEmulateOmegaStabilizes(t *testing.T) {
	// The full reduction loop: per-process lagged DAG views, growing round by
	// round. Eventually all correct processes output the same correct leader.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 2, 35)
	rounds, err := EmulateOmega(NewEC4(2), fp, det, EmulateOptions{
		Rounds:      4,
		BaseSamples: 2,
		Build:       BuildOptions{Seed: 17},
		ViewLag:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("got %d rounds", len(rounds))
	}
	last := rounds[len(rounds)-1]
	leader, agreed := last.Agreed(fp.Correct())
	if !agreed {
		t.Fatalf("correct processes disagree in the last round: %v", last.Outputs)
	}
	if !fp.IsCorrect(leader) {
		t.Fatalf("emulated Ω output a faulty process: %v", leader)
	}
	for _, r := range rounds {
		t.Logf("round %d (samples=%d, nodes=%d): outputs=%v how=%v", r.Round, r.Samples, r.Nodes, r.Outputs, r.Hows)
	}
}

func TestEmulateOmegaClassical(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	rounds, err := EmulateOmega(NewEC4(1), fp, det, EmulateOptions{
		Rounds:      3,
		Classical:   true,
		BaseSamples: 2,
		Build:       BuildOptions{Seed: 23},
		ViewLag:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := rounds[len(rounds)-1]
	leader, agreed := last.Agreed(fp.Correct())
	if !agreed || leader != 1 {
		t.Fatalf("classical emulation: outputs=%v, want unanimous p1", last.Outputs)
	}
}

func TestExplorerNodeCap(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 4, Seed: 1})
	ex := NewExplorer(NewEC4(2), 2, g, nil, 50)
	if err := ex.Build(); err == nil {
		t.Fatal("tiny cap must trigger the truncation error")
	}
	if !ex.Truncated() {
		t.Fatal("Truncated() must report the cap hit")
	}
}

func TestExtractClassicalRejectsMultiInstance(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: 2, Seed: 1})
	if _, err := ExtractClassical(NewEC4(2), 2, g, 0); err == nil {
		t.Fatal("classical extraction must reject L>1")
	}
}

func TestKTagsMonotoneUnderGrowth(t *testing.T) {
	// Growing the DAG can only ADD values to a vertex's k-tag (valencies
	// stabilize, Appendix B.5): check root tags across growth stages.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 1, 35)
	var prev uint8
	for samples := 2; samples <= 4; samples++ {
		g := BuildDAG(fp, det, BuildOptions{SamplesPerProcess: samples, Seed: 29})
		ex := NewExplorer(NewEC4(1), 2, g, []int{1, 0}, 0)
		if err := ex.Build(); err != nil {
			t.Fatal(err)
		}
		tag := ex.KTag(ex.Root(), 1)
		if tag&prev != prev {
			t.Fatalf("tag lost bits under growth: %b -> %b", prev, tag)
		}
		prev = tag
	}
}
