package node_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/etob"
	"repro/internal/node"
)

// TestBatchedClusterConvergesAndReportsStats pins the live-plane batching
// path: replicas configured with Config.Batch queue HTTP-submitted updates at
// the broadcast layer and flush them in windows — fewer update broadcasts
// than commands — while the service still converges on every acked write, and
// /status surfaces the batching and transport-coalescing counters.
func TestBatchedClusterConvergesAndReportsStats(t *testing.T) {
	c := newClusterWith(t, 3, func(cfg *node.Config) {
		cfg.Batch = etob.BatchOptions{MaxBatch: 8, MaxLinger: 2}
	})
	waitHealthy(t, c, 3, 10*time.Second)

	const ops = 42
	want := make(map[string]string, ops)
	for i := 0; i < ops; i++ {
		k, v := fmt.Sprintf("bk%d", i), fmt.Sprintf("v%d", i)
		// No pacing: bursts are what fill batch windows.
		if err := c.update(fmt.Sprintf("s%d", i%5), "set "+k+" "+v); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		want[k] = v
	}
	waitConverged(t, c.nodes, ops, want, 60*time.Second)

	var batchOps, batchFlushes int64
	for _, nd := range c.nodes {
		st, err := nodeStatus(nd)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.BatchTarget != 8 {
			t.Errorf("replica %d batch_target = %d, want 8", st.ID, st.BatchTarget)
		}
		if st.BatchQueued != 0 {
			t.Errorf("replica %d still has %d ops queued after convergence", st.ID, st.BatchQueued)
		}
		if st.Flushes == 0 {
			t.Errorf("replica %d transport reports zero writer flushes", st.ID)
		}
		batchOps += st.BatchOps
		batchFlushes += st.BatchFlushes
	}
	if batchOps != ops {
		t.Errorf("cluster batched %d ops, want %d (every accepted command rides the queue)", batchOps, ops)
	}
	if batchFlushes == 0 || batchFlushes >= batchOps {
		t.Errorf("%d flushes for %d ops — batching never coalesced", batchFlushes, batchOps)
	}
	t.Logf("batching: %d ops in %d flushes (mean batch %.1f)", batchOps, batchFlushes, float64(batchOps)/float64(batchFlushes))
}
