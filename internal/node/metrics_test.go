package node_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics fetches one endpoint's /metrics and strict-parses the
// exposition (ParseText rejects malformed Prometheus text outright).
func scrapeMetrics(t *testing.T, baseURL string) map[string]int64 {
	t.Helper()
	resp, err := testClient.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: %s", baseURL, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape %s: content type %q, want Prometheus text 0.0.4", baseURL, ct)
	}
	vals, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: invalid exposition: %v", baseURL, err)
	}
	return vals
}

// TestMetricsEndpointLiveCluster drives traffic through the front door and
// pins the live half of the observability plane: every replica and the front
// door serve valid Prometheus text, the replicas expose the full sim/live
// parity name set, the scraped counters agree with ground truth (ops pushed,
// ops applied, /status numbers), and /trace reconstructs a submitted op's
// lifecycle through to order-stability.
func TestMetricsEndpointLiveCluster(t *testing.T) {
	c := newCluster(t, 3)
	waitHealthy(t, c, 3, 10*time.Second)

	const ops = 6
	want := map[string]string{}
	for i := 0; i < ops; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := c.update(fmt.Sprintf("session-%d", i), "set "+k+" "+v); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		want[k] = v
	}
	waitConverged(t, c.nodes, ops, want, 20*time.Second)

	var totalAccepted, totalSubmitTraces int64
	for _, nd := range c.nodes {
		vals := scrapeMetrics(t, nd.URL())
		// Name parity: the live scrape must expose every stack metric the sim
		// registry exposes (the sim half is pinned in internal/core).
		for _, name := range obs.StackNames() {
			if _, ok := vals[name]; !ok {
				t.Errorf("node %v /metrics missing stack metric %s", nd.ID(), name)
			}
		}
		for _, name := range []string{
			obs.MetricTransportFlushes, obs.MetricTransportInboxDrop,
			obs.MetricNodeAccepted, obs.MetricNodeDegraded,
			obs.MetricOmegaFlaps, obs.MetricOmegaLeader,
		} {
			if _, ok := vals[name]; !ok {
				t.Errorf("node %v /metrics missing live metric %s", nd.ID(), name)
			}
		}
		if _, ok := vals[obs.MetricHTTPLatency+"_count"]; !ok {
			t.Errorf("node %v /metrics missing HTTP latency summary", nd.ID())
		}

		// Ground truth: a converged 3-replica run applied exactly `ops`
		// commands everywhere, and accepted counts must sum to `ops`.
		if got := vals[obs.MetricSMRApplied]; got != ops {
			t.Errorf("node %v smr_applied_total = %d, want %d", nd.ID(), got, ops)
		}
		totalAccepted += vals[obs.MetricNodeAccepted]
		if got, accepted := vals[obs.MetricNodeAccepted], nd.Accepted(); got != accepted {
			t.Errorf("node %v node_accepted_total = %d, accessor says %d", nd.ID(), got, accepted)
		}

		// /status is served off the same registry: its numbers and the
		// scrape's numbers must agree.
		st, err := nodeStatus(nd)
		if err != nil {
			t.Fatalf("status %v: %v", nd.ID(), err)
		}
		if int64(st.Applied) != vals[obs.MetricSMRApplied] {
			t.Errorf("node %v status applied %d != scraped %d", nd.ID(), st.Applied, vals[obs.MetricSMRApplied])
		}
		if st.Accepted != vals[obs.MetricNodeAccepted] {
			t.Errorf("node %v status accepted %d != scraped %d", nd.ID(), st.Accepted, vals[obs.MetricNodeAccepted])
		}
		if st.Leader != int(vals[obs.MetricOmegaLeader]) {
			t.Errorf("node %v status leader %d != scraped %d", nd.ID(), st.Leader, vals[obs.MetricOmegaLeader])
		}

		// Trace: every op this node submitted has a full causal timeline —
		// submit, batch-flush, broadcast, local deliver — and an
		// order-stability reading.
		self := fmt.Sprintf("p%d.", int(nd.ID()))
		var idx struct {
			Tracked int      `json:"tracked"`
			Recent  []string `json:"recent"`
		}
		resp, err := testClient.Get(nd.URL() + "/trace")
		if err != nil {
			t.Fatalf("trace index %v: %v", nd.ID(), err)
		}
		err = json.NewDecoder(resp.Body).Decode(&idx)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("trace index %v: %v", nd.ID(), err)
		}
		if idx.Tracked == 0 {
			t.Fatalf("node %v traced no ops after %d applied", nd.ID(), ops)
		}
		for _, op := range idx.Recent {
			if !strings.HasPrefix(op, self) {
				continue // submitted elsewhere: no submit stamp here
			}
			totalSubmitTraces++
			var tl struct {
				Events []struct {
					Stage string `json:"stage"`
					Proc  string `json:"proc"`
					At    int64  `json:"at"`
				} `json:"events"`
				OrderStableAt int64 `json:"order_stable_at"`
			}
			resp, err := testClient.Get(nd.URL() + "/trace?op=" + url.QueryEscape(op))
			if err != nil {
				t.Fatalf("trace %q: %v", op, err)
			}
			err = json.NewDecoder(resp.Body).Decode(&tl)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("trace %q: %v", op, err)
			}
			stages := map[string]int{}
			for _, ev := range tl.Events {
				stages[ev.Stage]++
			}
			for _, stage := range []string{"submit", "batch-flush", "broadcast", "deliver"} {
				if stages[stage] == 0 {
					t.Errorf("op %q on node %v missing %s stage (timeline %v)", op, nd.ID(), stage, stages)
				}
			}
			if tl.OrderStableAt == 0 {
				t.Errorf("op %q has no order-stability reading", op)
			}
		}
	}
	if totalAccepted != ops {
		t.Errorf("accepted across cluster = %d, want %d", totalAccepted, ops)
	}
	if totalSubmitTraces == 0 {
		t.Error("no submitted op had a local trace on any node")
	}

	// The front door's own observability: valid exposition, routing gauges.
	fvals := scrapeMetrics(t, c.front.URL())
	if got := fvals[obs.MetricLBHealthy]; got != 3 {
		t.Errorf("lb_healthy_replicas = %d, want 3", got)
	}
	if _, ok := fvals[obs.MetricLBFailovers]; !ok {
		t.Error("front door /metrics missing lb_failovers_total")
	}
	if fvals[obs.MetricHTTPLatency+"_count"] < ops {
		t.Errorf("front door routed-request latency count %d < %d ops", fvals[obs.MetricHTTPLatency+"_count"], ops)
	}
}

// TestMetricsScrapeMonotonicUnderLoad pins that repeated scrapes during live
// traffic are each individually valid and counters never step backwards —
// the mid-soak invariant the chaos harness also asserts.
func TestMetricsScrapeMonotonicUnderLoad(t *testing.T) {
	c := newCluster(t, 2)
	waitHealthy(t, c, 2, 10*time.Second)
	nd := c.nodes[0]
	prev := map[string]int64{}
	counters := []string{
		obs.MetricNodeAccepted, obs.MetricSMRApplied, obs.MetricBatchFlushes,
		obs.MetricTransportFlushes, obs.MetricRetransmitResends,
	}
	for i := 0; i < 5; i++ {
		if err := c.update("mono", fmt.Sprintf("set m%d %d", i, i)); err != nil {
			t.Fatalf("update: %v", err)
		}
		vals := scrapeMetrics(t, nd.URL())
		for _, name := range counters {
			if vals[name] < prev[name] {
				t.Errorf("scrape %d: %s went backwards (%d -> %d)", i, name, prev[name], vals[name])
			}
			prev[name] = vals[name]
		}
		time.Sleep(30 * time.Millisecond)
	}
}
