package node_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/smr"
	"repro/internal/trace"
)

// chaosSeed pins the soak's fault schedule: every injector's per-link
// drop/delay/duplicate decisions are a pure function of (seed, link, frame
// index) — see runtime.FaultTransport's determinism contract — so a failing
// soak reproduces under the same seed. CI runs this seed with -race.
const chaosSeed = 42

// chaosSummary is the soak's machine-readable run report, written to
// $CHAOS_SUMMARY when set (CI uploads it as an artifact).
type chaosSummary struct {
	Seed      int64 `json:"seed"`
	Acked     int   `json:"acked"`
	ClientErr int   `json:"client_errors"`
	Failovers int64 `json:"lb_failovers"`
	Declined  int64 `json:"lb_declined"`
	Denied    int64 `json:"lb_retries_denied"`
	// Cluster-wide aggregates of the per-node transport/retransmit counters
	// (the soak asserts resends and duplicates are nonzero — a lossy soak
	// that never resent anything exercised nothing — and that no frame was
	// dropped at an inbox).
	Resends      int64                  `json:"resends"`
	Duplicates   int64                  `json:"duplicates"`
	InboxDropped int64                  `json:"inbox_dropped"`
	Nodes        map[string]node.Status `json:"nodes"`
}

func writeChaosSummary(t *testing.T, c *cluster, acked, clientErr int) {
	path := os.Getenv("CHAOS_SUMMARY")
	if path == "" {
		return
	}
	sum := chaosSummary{
		Seed:      chaosSeed,
		Acked:     acked,
		ClientErr: clientErr,
		Failovers: c.front.Failovers(),
		Declined:  c.front.Declined(),
		Denied:    c.front.RetriesDenied(),
		Nodes:     make(map[string]node.Status, len(c.nodes)),
	}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if st, err := nodeStatus(nd); err == nil {
			st.Snapshot = "" // the convergence check already compared these
			sum.Nodes[fmt.Sprint(int(nd.ID()))] = st
			sum.Resends += st.Resends
			sum.Duplicates += st.Duplicates
			sum.InboxDropped += st.InboxDropped
		}
	}
	raw, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Errorf("chaos summary: %v", err)
		return
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Errorf("chaos summary: %v", err)
	}
}

// script applies one control step to every live node's fault injector —
// partitions must be enforced at every SENDER, since the injector sits on
// the outbound path.
func (c *cluster) script(step func(f *runtime.FaultTransport)) {
	for _, nd := range c.nodes {
		if nd != nil && nd.Fault() != nil {
			step(nd.Fault())
		}
	}
}

// midSoakScrape hits every listed node's /metrics DURING the soak — faults
// live, traffic flowing — asserting each scrape is individually valid
// Prometheus text and that the named counters never step backwards across
// scrapes (prev carries per-node last-seen values between calls).
func midSoakScrape(t *testing.T, nodes []*node.Node, prev map[model.ProcID]map[string]int64) {
	t.Helper()
	counters := []string{
		obs.MetricNodeAccepted, obs.MetricSMRApplied, obs.MetricRetransmitResends,
		obs.MetricRetransmitDuplicates, obs.MetricTransportFlushes, obs.MetricTransportInjected,
	}
	for _, nd := range nodes {
		resp, err := testClient.Get(nd.URL() + "/metrics")
		if err != nil {
			t.Fatalf("mid-soak scrape %v: %v", nd.ID(), err)
		}
		vals, err := obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("mid-soak scrape %v: invalid exposition under chaos: %v", nd.ID(), err)
		}
		last := prev[nd.ID()]
		if last == nil {
			last = map[string]int64{}
			prev[nd.ID()] = last
		}
		for _, name := range counters {
			if vals[name] < last[name] {
				t.Errorf("mid-soak scrape %v: %s went backwards (%d -> %d)", nd.ID(), name, last[name], vals[name])
			}
			last[name] = vals[name]
		}
	}
}

// TestChaosSoakConvergesUnderScriptedFaults is the service plane's hostile
// soak: four replicas behind the front door, every transport wrapped in a
// seeded lossy injector, while an OPEN-LOOP client streams updates — each
// operation is sent once, and whatever the front door acks is a promise.
// Scripted over the stream: a two-sided partition and heal, then a replica
// kill and restart. The acceptance bar:
//
//   - ZERO acked-then-lost writes: every 202-acked update is present in the
//     final converged state of every replica.
//   - Convergence after heal: all four snapshots byte-identical.
//   - Bounded retransmit state: pending envelopes drain to zero once the
//     cluster is quiet (nothing leaks from the partition/kill windows).
//
// Client-visible errors during fault windows are permitted (counted, not
// retried — open loop); silent loss of an ack is not.
//
// The soak doubles as the observability plane's trust check: each replica
// records its StepLog (the conformance ground truth), /metrics is scraped
// MID-soak (valid exposition and monotone counters while faults are live),
// and after convergence the scraped counters are cross-checked against the
// StepLog — accepted ops against input steps, applied ops against the
// replica's Applied outputs — so a dashboard number provably equals what the
// protocol actually did.
func TestChaosSoakConvergesUnderScriptedFaults(t *testing.T) {
	logs := make(map[model.ProcID]*trace.StepLog)
	c := newClusterWith(t, 4, func(cfg *node.Config) {
		fc, ok := runtime.FaultPreset("lossy", chaosSeed+int64(cfg.ID))
		if !ok {
			t.Fatal("lossy fault preset missing")
		}
		cfg.Fault = &fc
		// One StepLog per identity, shared across restarts: the ground truth
		// for the metrics cross-check below.
		if logs[cfg.ID] == nil {
			logs[cfg.ID] = trace.NewStepLog()
		}
		cfg.Runtime.StepLog = logs[cfg.ID]
	})
	waitHealthy(t, c, 4, 10*time.Second)
	scrapes := make(map[model.ProcID]map[string]int64)

	want := make(map[string]string)
	acked, clientErr := 0, 0
	phase := func(tag string, count int) {
		for i := 0; i < count; i++ {
			k, v := fmt.Sprintf("%s%d", tag, i), fmt.Sprintf("v%d", i)
			if err := c.update(fmt.Sprintf("s%d", i%7), "set "+k+" "+v); err != nil {
				clientErr++
				continue
			}
			want[k] = v
			acked++
			time.Sleep(2 * time.Millisecond)
		}
	}

	phase("a", 40) // seeded 15% loss on every link; retransmit heals
	midSoakScrape(t, c.nodes, scrapes)

	// Two-sided partition {1,2} | {3,4}: enforced at every sender, so no
	// frame crosses in either direction. Both sides keep a peer, so neither
	// degrades — the service stays writable on both sides and the halves
	// diverge until the heal.
	c.script(func(f *runtime.FaultTransport) { f.Partition(1, 2) })
	phase("b", 40)
	midSoakScrape(t, c.nodes, scrapes) // scraped THROUGH the partition
	c.script(func(f *runtime.FaultTransport) { f.Heal() })
	phase("c", 30)

	// Crash replica 4 without deregistration; probes must evict it while the
	// client keeps streaming, then it returns under the same identity.
	c.nodes[3].Kill()
	waitHealthy(t, c, 3, 15*time.Second)
	phase("d", 30)
	midSoakScrape(t, c.nodes[:3], scrapes) // replica 4 is a corpse; scrape survivors
	c.nodes[3] = c.startNode(t, 4)
	waitHealthy(t, c, 4, 15*time.Second)
	phase("e", 20)

	if acked == 0 {
		t.Fatal("open-loop client got zero acks; the soak exercised nothing")
	}
	t.Logf("chaos soak: %d acked, %d client errors, lb failovers=%d declined=%d",
		acked, clientErr, c.front.Failovers(), c.front.Declined())

	// Zero acked-then-lost: every acked write in every replica, snapshots
	// identical. The restarted replica rebuilds via promote traffic.
	waitConverged(t, c.nodes, acked, want, 120*time.Second)

	// Bounded retransmit state: the client is quiet, but the leader keeps
	// broadcasting promote traffic forever, so pending never parks at zero —
	// the invariant is that it stays BOUNDED by the in-flight window (a few
	// envelopes per link) and nothing from the partition or kill windows
	// leaked into a growing backlog. Sample for a sustained window; any
	// sample far above the steady-state band, or any abandonment, fails.
	const pendingBound = 64 // in-flight window: ~a few envelopes × 3 links, with slack
	sampleUntil := time.Now().Add(5 * time.Second)
	for time.Now().Before(sampleUntil) {
		for _, nd := range c.nodes {
			st, err := nodeStatus(nd)
			if err != nil {
				t.Fatalf("status during drain check: %v", err)
			}
			if st.Pending > pendingBound {
				t.Fatalf("replica %d pending envelopes %d exceed the in-flight bound %d: retransmit state leaked",
					st.ID, st.Pending, pendingBound)
			}
			if st.Abandoned != 0 {
				t.Fatalf("replica %d abandoned %d envelopes during the soak (give-up must stay far beyond chaos scales)",
					st.ID, st.Abandoned)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The healing machinery must have visibly worked: 15% seeded loss on
	// every link forces resends, and lost ACKs make some of those resends
	// arrive twice — receiver-side dedup records them as duplicates. Both
	// counters at zero would mean the soak never exercised the layer it
	// exists to test. The inbox, meanwhile, must never have shed a frame:
	// this workload is far below the event loop's capacity, so any inbox
	// drop is a scheduling bug, not load.
	var resends, dups, inboxDropped int64
	for _, nd := range c.nodes {
		st, err := nodeStatus(nd)
		if err != nil {
			t.Fatalf("status for counter audit: %v", err)
		}
		resends += st.Resends
		dups += st.Duplicates
		inboxDropped += st.InboxDropped
	}
	if resends == 0 {
		t.Error("seeded 15% loss produced zero resends across the cluster")
	}
	if dups == 0 {
		t.Error("seeded loss produced zero receiver-side duplicates (ack loss should cause some)")
	}
	if inboxDropped != 0 {
		t.Errorf("%d frames dropped at replica inboxes under a light workload", inboxDropped)
	}
	t.Logf("counter audit: resends=%d duplicates=%d inbox_dropped=%d", resends, dups, inboxDropped)

	// Metrics-vs-StepLog cross-check, on the replicas that lived through the
	// whole soak (replica 4's restart split its counters across two lives,
	// but its shared StepLog spans both). The StepLog is the conformance
	// ground truth — every atomic step with its trigger and emissions — so:
	//
	//   - node_accepted_total must equal the number of input steps that
	//     carried a client command (every 202 became exactly one step), and
	//   - smr_applied_total must equal the Total of the replica's LAST
	//     Applied output (the machine's own account of its applied prefix).
	//
	// A divergence here means the observability plane is lying about the
	// protocol — the one failure mode a metrics endpoint must not have.
	for _, nd := range c.nodes[:3] {
		steps := logs[nd.ID()].Steps()
		var inputSteps, lastApplied int64
		for _, s := range steps {
			if s.Kind == trace.StepInput {
				if _, isCmd := s.In.(smr.Command); isCmd {
					inputSteps++
				}
			}
			for _, out := range s.Outputs {
				if ap, isApplied := out.(smr.Applied); isApplied {
					lastApplied = int64(ap.Total)
				}
			}
		}
		resp, err := testClient.Get(nd.URL() + "/metrics")
		if err != nil {
			t.Fatalf("final scrape %v: %v", nd.ID(), err)
		}
		vals, err := obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("final scrape %v: invalid exposition: %v", nd.ID(), err)
		}
		if got := vals[obs.MetricNodeAccepted]; got != inputSteps {
			t.Errorf("replica %v: node_accepted_total=%d but StepLog recorded %d command input steps",
				nd.ID(), got, inputSteps)
		}
		if got := vals[obs.MetricSMRApplied]; got != lastApplied {
			t.Errorf("replica %v: smr_applied_total=%d but StepLog's last Applied.Total=%d",
				nd.ID(), got, lastApplied)
		}
		if int64(len(steps)) == 0 {
			t.Errorf("replica %v recorded no steps; cross-check is vacuous", nd.ID())
		}
	}

	writeChaosSummary(t, c, acked, clientErr)
}

// TestDegradedReplicaRefusesWritesServesStaleReads pins the node's graceful
// degradation contract end to end: a replica partitioned away from EVERY
// peer refuses writes with 503 + Retry-After (the front door fails those
// over), keeps serving reads marked X-Ec-Degraded, and self-heals — clearing
// degraded mode and converging on the writes it missed — when the partition
// lifts.
func TestDegradedReplicaRefusesWritesServesStaleReads(t *testing.T) {
	c := newClusterWith(t, 3, func(cfg *node.Config) {
		cfg.Fault = &runtime.FaultConfig{} // pure control surface, no seeded faults
		cfg.DegradedAfter = 250 * time.Millisecond
		cfg.BootGrace = 500 * time.Millisecond
	})
	waitHealthy(t, c, 3, 10*time.Second)

	// Baseline writes so the degraded replica has state worth serving stale.
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("base%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := c.update(fmt.Sprintf("s%d", i), "set "+k+" "+v); err != nil {
			t.Fatalf("baseline update: %v", err)
		}
	}
	waitConverged(t, c.nodes, 10, want, 30*time.Second)
	time.Sleep(600 * time.Millisecond) // past every replica's boot grace

	// Isolate replica 3 on every sender: it hears nothing and nothing it
	// sends arrives.
	c.script(func(f *runtime.FaultTransport) { f.Partition(3) })
	iso := c.nodes[2]
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := nodeStatus(iso)
		if err == nil && st.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("isolated replica never declared itself degraded")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Direct write: explicit 503 with Retry-After, never a silent accept.
	resp, err := testClient.Post(iso.URL()+"/update?cmd=set+lost+1", "text/plain", nil)
	if err != nil {
		t.Fatalf("direct write: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}

	// Direct read: served, but marked stale.
	resp, err = testClient.Get(iso.URL() + "/snapshot")
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ec-Degraded"); got != "stale" {
		t.Fatalf("degraded read staleness marker = %q, want \"stale\"", got)
	}

	// Healthz stays green: a degraded replica is read capacity, not a corpse.
	if healthy := c.front.Healthy(); len(healthy) != 3 {
		t.Fatalf("front door evicted the degraded replica: healthy=%v", healthy)
	}

	// Writes through the front door keep succeeding — sessions ranked onto
	// the degraded replica fail over on its explicit decline.
	for i := 0; i < 12; i++ {
		k, v := fmt.Sprintf("part%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := c.update(fmt.Sprintf("s%d", i), "set "+k+" "+v); err != nil {
			t.Fatalf("front-door write during partition: %v", err)
		}
	}
	if st, err := nodeStatus(iso); err != nil || st.Rejected == 0 {
		// Rendezvous may not have ranked any session onto replica 3; the
		// direct write above guarantees at least one rejection.
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		t.Fatalf("degraded replica recorded no rejected writes (want ≥ 1 from the direct attempt)")
	}

	// Heal: degraded mode clears itself and the replica converges on every
	// write it missed.
	c.script(func(f *runtime.FaultTransport) { f.Heal() })
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := nodeStatus(iso)
		if err == nil && !st.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("degraded mode never cleared after heal")
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitConverged(t, c.nodes, 22, want, 60*time.Second)
}
