// Package node wraps one service replica as a deployable process: the same
// automaton stack the simulator and the in-process cluster run
// (core.ReplicaStack — retransmission, broadcast protocol, replicated
// machine), driven by a runtime.Proc over a real TCP transport, fronted by a
// small HTTP API for client operations and introspection.
//
// A Node is what cmd/ecnode boots per replica. Its layers, bottom up:
//
//   - runtime.TCPTransport: length-prefixed gob frames over reconnecting
//     per-peer connections. Delivery is at-most-once; reconnection is the
//     transport's job.
//   - retransmit.Wrap: restores the paper's eventual-delivery assumption over
//     that lossy wire — and, because a deployable node must not leak against
//     a peer that is gone for good, enables the sender-side give-up bound
//     (Options.GiveUpTicks) sized well above the expected churn scale.
//   - runtime.Proc: the event loop with the heartbeat Ω — the failure
//     detector actually implemented from message passing.
//   - HTTP (this package): POST /update submits commands, GET /read and
//     /snapshot read the replica's machine, /status reports replication
//     internals, /healthz answers load-balancer probes.
//
// Restart identity: the node pins the process clock to the Unix epoch
// (runtime.Options.ClockEpoch), so a restarted replica initializes its
// retransmission layer with a strictly larger incarnation epoch instead of
// colliding with its previous life — receiver-side dedup then distinguishes
// the two incarnations' envelope streams by construction.
//
// Shutdown is graceful and load-balancer-aware: Shutdown first flips
// /healthz to failing and deregisters from the front door (internal/lb), so
// no new operations are routed here; then it drains in-flight HTTP requests;
// only then does it stop the event loop and close the transport. A client
// driving operations through the front door across a rolling restart
// observes zero failed operations (the node package's integration test pins
// this).
//
// # Degraded read-only mode
//
// A replica that has heard NO peer heartbeat for a leader-timeout span
// (Config.DegradedAfter) is cut off from the mesh: its Ω output has
// collapsed to itself, and a command accepted now cannot replicate anywhere
// — if this replica then dies, "202 accepted" was a lie. Rather than fail
// silently, the node degrades explicitly:
//
//   - Writes are REFUSED with 503 and a Retry-After header. The front door
//     treats that reply as "replica declining, not broken" and fails the
//     operation over to a backend on the other side of the partition.
//   - Reads and snapshots keep being served — eventual consistency means
//     local state is always a legitimate (if stale) prefix — but carry an
//     "X-Ec-Degraded: stale" header so clients can tell.
//   - /healthz stays 200: a degraded replica is alive and useful for reads;
//     eviction would throw that capacity away.
//
// Degradation is self-healing: the first peer heartbeat after the partition
// heals clears it. A boot grace period (Config.BootGrace) keeps a starting
// replica out of degraded mode while the mesh dials in.
//
// Chaos: Config.Fault, when set, wraps the TCP transport in a
// runtime.FaultTransport — the live seeded chaos injector — and Fault()
// exposes the handle so harnesses can script partitions and heals against a
// running node.
package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/smr"
)

// RegisterProtocolTypes registers the replica stack's full wire vocabulary
// with the gob codec: retransmission envelopes and the broadcast protocol
// messages they carry. Every process of a cluster must call it (node.New
// does) before frames flow.
func RegisterProtocolTypes() {
	runtime.RegisterWireType(retransmit.Data{})
	runtime.RegisterWireType(retransmit.Ack{})
	runtime.RegisterWireType(etob.UpdateMsg{})
	runtime.RegisterWireType(etob.PromoteMsg{})
}

// DefaultGiveUpTicks is the node's default sender-side persistence bound:
// with the default 2ms tick this is ~60s of link silence — far above restart
// and reconnect scales — before a capped-backoff envelope is abandoned.
const DefaultGiveUpTicks = 30000

// Config configures one replica node.
type Config struct {
	// ID is this replica's process ID (1..n).
	ID model.ProcID
	// Peers maps every replica — ID included — to its TRANSPORT address
	// (host:port for the inter-replica TCP mesh, not the HTTP API).
	Peers map[model.ProcID]string
	// HTTPAddr is the client-facing HTTP listen address (default
	// "127.0.0.1:0").
	HTTPAddr string
	// Front, if non-empty, is the front door's base URL (internal/lb); the
	// node registers itself on start and deregisters on Shutdown.
	Front string
	// Consistency selects the protocol (default core.Eventual).
	Consistency core.Consistency
	// Machine is the replicated state machine (default KV store).
	Machine smr.MachineFactory
	// Runtime tunes the event loop. ClockEpoch is forced to the Unix epoch
	// (see the package comment); everything else passes through.
	Runtime runtime.Options
	// Retransmit tunes the retransmission layer. Nil gets a per-ID seed and
	// DefaultGiveUpTicks.
	Retransmit *retransmit.Options
	// Batch configures ETOB broadcast batching (internal/etob's flush-policy
	// contract): HTTP-submitted updates queue at the broadcast layer and ride
	// the next window — one update message per flush instead of one per
	// command — shrinking both wire traffic and the retransmission layer's
	// sender state by the batch factor. The zero value disables batching.
	Batch etob.BatchOptions
	// Fault, if non-nil, wraps the TCP transport in a runtime.FaultTransport
	// seeded with this config — the live chaos injector. The handle is
	// available via Fault() for scripting partitions and heals.
	Fault *runtime.FaultConfig
	// DegradedAfter is the peer-silence window after which the replica
	// declares itself degraded (read-only). Default: the event loop's
	// leader timeout.
	DegradedAfter time.Duration
	// BootGrace suppresses degraded mode for this long after start, covering
	// mesh dial-in. Default: 2×DegradedAfter.
	BootGrace time.Duration
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Node is one running replica.
type Node struct {
	cfg   Config
	tr    runtime.Transport
	tcp   *runtime.TCPTransport   // unwrapped handle for transport counters
	fault *runtime.FaultTransport // nil unless Config.Fault was set
	proc  *runtime.Proc
	srv   *http.Server
	ln    net.Listener
	rt    retransmit.Options
	front string

	started       time.Time
	degradedAfter time.Duration
	bootGrace     time.Duration

	draining  atomic.Bool
	accepted  atomic.Int64
	rejected  atomic.Int64 // writes refused while degraded
	closeOnce sync.Once
	httpDone  chan struct{}

	// Observability plane: the metrics registry behind GET /metrics (and,
	// since the migration, /status), the op-lifecycle tracer behind
	// GET /trace, and a snapshot cache the registry's scrape hook refreshes
	// alongside the stack counters (one Proc.Inspect serves both).
	reg     *obs.Registry
	tracer  *obs.OpTracer
	httpLat *obs.Histogram
	snapMu  sync.Mutex
	snap    string
}

// New builds and starts a replica node: transport bound, event loop running,
// HTTP API serving, front-door registration done (when configured).
func New(cfg Config) (*Node, error) {
	if cfg.ID < 1 {
		return nil, fmt.Errorf("node: invalid replica ID %v", cfg.ID)
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	rt := retransmit.Options{Seed: int64(cfg.ID), GiveUpTicks: DefaultGiveUpTicks}
	if cfg.Retransmit != nil {
		rt = *cfg.Retransmit
	}
	RegisterProtocolTypes()
	tcp, err := runtime.NewTCPTransport(runtime.TCPConfig{Self: cfg.ID, Peers: cfg.Peers})
	if err != nil {
		return nil, err
	}
	var tr runtime.Transport = tcp
	var fault *runtime.FaultTransport
	if cfg.Fault != nil {
		fault = runtime.NewFaultTransport(tcp, *cfg.Fault)
		tr = fault
	}
	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		tr.Close()
		return nil, fmt.Errorf("node: http listen %s: %w", cfg.HTTPAddr, err)
	}
	opts := cfg.Runtime
	opts.ClockEpoch = time.Unix(0, 0)
	// Degraded window defaults track the event loop's own liveness horizon
	// (mirroring runtime.Options defaults for unset fields).
	hb := opts.HeartbeatInterval
	if hb <= 0 {
		hb = 2 * time.Millisecond
	}
	degradedAfter := cfg.DegradedAfter
	if degradedAfter <= 0 {
		degradedAfter = opts.LeaderTimeout
		if degradedAfter <= 0 {
			degradedAfter = 10 * hb
		}
	}
	bootGrace := cfg.BootGrace
	if bootGrace <= 0 {
		bootGrace = 2 * degradedAfter
	}
	n := &Node{
		cfg:           cfg,
		tr:            tr,
		tcp:           tcp,
		fault:         fault,
		rt:            rt,
		front:         strings.TrimRight(cfg.Front, "/"),
		ln:            ln,
		started:       time.Now(),
		degradedAfter: degradedAfter,
		bootGrace:     bootGrace,
		httpDone:      make(chan struct{}),
	}
	n.reg = obs.NewRegistry()
	n.tracer = obs.NewOpTracer(0)
	n.httpLat = n.reg.Histogram(obs.MetricHTTPLatency)
	// The tracer's submit and deliver stamps ride the event loop's output
	// stream; tee with whatever observer the caller installed.
	obsv := opts.Observer
	if obsv == nil {
		obsv = sim.NopObserver{}
	}
	opts.Observer = traceObserver{Observer: obsv, n: n}
	n.proc = runtime.NewProc(tr, core.ReplicaStackWith(cfg.Consistency, core.StackOptions{
		Machine:    cfg.Machine,
		Retransmit: &rt,
		Batch:      cfg.Batch,
	}), opts)
	n.wireMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/update", n.handleUpdate)
	mux.HandleFunc("/read", n.handleRead)
	mux.HandleFunc("/snapshot", n.handleSnapshot)
	mux.HandleFunc("/status", n.handleStatus)
	mux.HandleFunc("/healthz", n.handleHealthz)
	mux.Handle("/metrics", n.reg)
	mux.Handle("/trace", n.tracer)
	// Explicit server deadlines: a wedged or malicious client must not pin a
	// handler goroutine (or a drain) forever.
	n.srv = &http.Server{
		Handler:           n.instrument(mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		defer close(n.httpDone)
		err := n.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			n.logf("node %v: http serve: %v", cfg.ID, err)
		}
	}()

	if n.front != "" {
		if err := n.register(); err != nil {
			n.logf("node %v: front-door registration failed: %v", cfg.ID, err)
		}
	}
	return n, nil
}

// wireMetrics connects every layer of the node to the registry. Sources with
// their own atomics (transport, event loop, HTTP counters) register
// read-at-scrape functions; counters living inside the event loop (the
// protocol stack) are snapshotted by an OnScrape hook through ONE
// Proc.Inspect, which also refreshes the machine-snapshot cache /status
// serves. The ETOB flush hook for the op tracer is installed the same way.
func (n *Node) wireMetrics() {
	reg := n.reg
	reg.CounterFunc(obs.MetricTransportDropped, n.tr.Dropped)
	reg.CounterFunc(obs.MetricTransportInboxDrop, n.tcp.InboxDropped)
	reg.CounterFunc(obs.MetricTransportFlushes, n.tcp.Flushes)
	reg.CounterFunc(obs.MetricTransportCoalesced, n.tcp.Coalesced)
	reg.CounterFunc(obs.MetricTransportRedials, n.tcp.Redials)
	if n.fault != nil {
		reg.CounterFunc(obs.MetricTransportInjected, n.fault.Injected)
	}
	reg.CounterFunc(obs.MetricNodeAccepted, n.accepted.Load)
	reg.CounterFunc(obs.MetricNodeRejected, n.rejected.Load)
	reg.GaugeFunc(obs.MetricNodeDegraded, func() int64 {
		if n.Degraded() {
			return 1
		}
		return 0
	})
	reg.CounterFunc(obs.MetricOmegaFlaps, n.proc.LeaderFlaps)
	reg.GaugeFunc(obs.MetricOmegaLeader, func() int64 { return int64(n.proc.Leader()) })
	reg.OnScrape(func() {
		n.proc.Inspect(func(a model.Automaton) {
			core.CollectStackMetrics(reg, a)
			snap := core.UnwrapReplica(a).Snapshot()
			n.snapMu.Lock()
			n.snap = snap
			n.snapMu.Unlock()
		})
	})
	n.proc.Inspect(func(a model.Automaton) {
		if e, ok := core.UnwrapReplica(a).Inner().(*etob.Automaton); ok {
			e.SetFlushHook(n.onFlush)
		}
	})
}

// onFlush is the ETOB batching layer's observability tap: every op leaving
// in an update(CG_i) broadcast gets its batch-flush and broadcast stamps
// (one instant — in this protocol the flush IS the broadcast).
func (n *Node) onFlush(ids []string) {
	now := time.Now().UnixMicro()
	self := fmt.Sprint(int(n.cfg.ID))
	for _, id := range ids {
		n.tracer.Record(id, obs.StageBatchFlush, self, now)
		n.tracer.Record(id, obs.StageBroadcast, self, now)
	}
}

// traceObserver stamps the op tracer from the event loop's output stream:
// the replica announces each minted broadcast ID (submit) and each applied
// suffix (deliver — possibly again after a causal-order rebuild, which is
// exactly the re-application the "order-stable" reading keys on).
type traceObserver struct {
	sim.Observer
	n *Node
}

func (o traceObserver) OnOutput(p model.ProcID, t model.Time, out any) {
	switch v := out.(type) {
	case model.BroadcastInput:
		o.n.tracer.Record(v.ID, obs.StageSubmit, fmt.Sprint(int(p)), time.Now().UnixMicro())
	case smr.Applied:
		now := time.Now().UnixMicro()
		proc := fmt.Sprint(int(p))
		for _, id := range v.New {
			o.n.tracer.Record(id, obs.StageDeliver, proc, now)
		}
	}
	o.Observer.OnOutput(p, t, out)
}

// instrument wraps the HTTP mux with the request-latency histogram
// (http_request_duration_us — microseconds, all endpoints).
func (n *Node) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		n.httpLat.Record(time.Since(start).Microseconds())
	})
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// ID returns the replica's process ID.
func (n *Node) ID() model.ProcID { return n.cfg.ID }

// HTTPAddr returns the address the HTTP API actually listens on.
func (n *Node) HTTPAddr() string { return n.ln.Addr().String() }

// URL returns the HTTP API base URL.
func (n *Node) URL() string { return "http://" + n.HTTPAddr() }

// Proc exposes the underlying event loop (tests and cmd/ecnode diagnostics).
func (n *Node) Proc() *runtime.Proc { return n.proc }

// Accepted returns how many update operations this node has accepted.
func (n *Node) Accepted() int64 { return n.accepted.Load() }

// Rejected returns how many writes this node refused while degraded.
func (n *Node) Rejected() int64 { return n.rejected.Load() }

// Registry returns the node's metrics registry (the handler behind
// GET /metrics). Harnesses can read counters directly instead of scraping.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Tracer returns the node's op-lifecycle tracer (the handler behind
// GET /trace).
func (n *Node) Tracer() *obs.OpTracer { return n.tracer }

// Fault returns the live chaos injector wrapping this node's transport, or
// nil when Config.Fault was not set.
func (n *Node) Fault() *runtime.FaultTransport { return n.fault }

// Degraded reports whether this replica is currently cut off from its peer
// mesh: past the boot grace, cluster size ≥ 2, and no peer heartbeat within
// the degraded window. See the package comment for the semantics.
func (n *Node) Degraded() bool {
	if n.proc.N() < 2 {
		return false
	}
	if time.Since(n.started) < n.bootGrace {
		return false
	}
	return n.proc.PeersHeard(n.degradedAfter) == 0
}

// Front-door client-op budget: every control-plane HTTP call carries an
// explicit deadline, and retries follow exponential backoff with FULL jitter
// — uniform in [0, min(base·2^attempt, cap)] — so a herd of replicas racing
// a rebooting front door decorrelates instead of hammering in lockstep.
const (
	frontOpTimeout     = 2 * time.Second
	frontBackoffBase   = 50 * time.Millisecond
	frontBackoffCap    = time.Second
	registerAttempts   = 12
	deregisterAttempts = 3
)

func backoffFullJitter(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// postFront performs one deadline-bounded POST to the front door, treating
// any non-200 as an error.
func (n *Node) postFront(target string) error {
	ctx, cancel := context.WithTimeout(context.Background(), frontOpTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("front door answered %s", resp.Status)
	}
	return nil
}

// register announces this replica to the front door, with bounded
// backoff-and-jitter retries so a node booting alongside its front door wins
// the race without tight-loop hammering.
func (n *Node) register() error {
	v := url.Values{"id": {fmt.Sprint(int(n.cfg.ID))}, "url": {n.URL()}}
	target := n.front + "/register?" + v.Encode()
	var lastErr error
	for attempt := 0; attempt < registerAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffFullJitter(frontBackoffBase, frontBackoffCap, attempt-1))
		}
		if lastErr = n.postFront(target); lastErr == nil {
			return nil
		}
	}
	return lastErr
}

// deregister withdraws this replica from the front door (best effort, but
// retried: a lost deregistration leaves the front door routing to a corpse
// until its probes notice).
func (n *Node) deregister() {
	v := url.Values{"id": {fmt.Sprint(int(n.cfg.ID))}}
	target := n.front + "/deregister?" + v.Encode()
	var lastErr error
	for attempt := 0; attempt < deregisterAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffFullJitter(frontBackoffBase, frontBackoffCap, attempt-1))
		}
		if lastErr = n.postFront(target); lastErr == nil {
			return
		}
	}
	n.logf("node %v: deregister: %v", n.cfg.ID, lastErr)
}

// Shutdown stops the node gracefully, in the order that costs clients
// nothing: leave the front door and fail health probes first (no NEW
// operations are routed here), drain in-flight HTTP work (operations already
// here complete — the replica keeps accepting until its event loop actually
// stops), flush the retransmission layer's unacked envelopes so every
// accepted command has reached the surviving replicas, and only then stop
// the event loop and close the transport. Safe to call more than once.
func (n *Node) Shutdown(ctx context.Context) error {
	var err error
	n.closeOnce.Do(func() {
		n.draining.Store(true)
		if n.front != "" {
			n.deregister()
		}
		err = n.srv.Shutdown(ctx)
		<-n.httpDone
		n.flushPending(ctx)
		n.proc.Stop() // closes the transport too
		select {
		case <-n.proc.Done():
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	})
	return err
}

// flushPending waits (bounded by ctx) until the retransmission layer holds no
// unacked envelopes — every command this node accepted and broadcast has been
// acknowledged by every peer — so stopping the transport loses nothing. A
// peer that is itself down keeps envelopes pending; the context bounds how
// long departure waits for it.
func (n *Node) flushPending(ctx context.Context) {
	for {
		pending := 0
		ok := n.proc.Inspect(func(a model.Automaton) {
			if wrap, isWrapped := a.(*retransmit.Automaton); isWrapped {
				pending = wrap.PendingEnvelopes()
			}
		})
		if !ok || pending == 0 {
			return
		}
		select {
		case <-ctx.Done():
			n.logf("node %v: leaving with %d unacked envelopes (flush budget exhausted)", n.cfg.ID, pending)
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Kill stops the node abruptly — no deregistration, no drain — simulating a
// crash (the front door's health probes must evict it). Tests only.
func (n *Node) Kill() {
	n.closeOnce.Do(func() {
		n.draining.Store(true)
		n.srv.Close()
		<-n.httpDone
		n.proc.Stop()
		<-n.proc.Done()
	})
}

// handleUpdate accepts a command (query parameter "cmd", or the request body
// when absent) and submits it to the replica. 202 means accepted for
// replication, not yet applied — this is an eventually consistent service.
func (n *Node) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	cmd := r.URL.Query().Get("cmd")
	if cmd == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cmd = strings.TrimSpace(string(body))
	}
	if cmd == "" {
		http.Error(w, "empty command", http.StatusBadRequest)
		return
	}
	// A DEGRADED replica refuses writes explicitly: accepted-but-unreplicable
	// is the one acknowledgment this service must never hand out. 503 plus
	// Retry-After tells the front door "decline, not death" — it fails the
	// operation over to a connected backend without marking this one down.
	if n.Degraded() {
		n.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "degraded: partitioned from all peers, refusing writes", http.StatusServiceUnavailable)
		return
	}
	// Note: a DRAINING node still accepts — operations routed here before the
	// front door saw the deregistration must succeed, and the shutdown path
	// flushes their replication before the event loop stops. Only an actually
	// stopped event loop refuses.
	if !n.proc.Submit(smr.Command{Cmd: cmd}) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	n.accepted.Add(1)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "accepted")
}

// inspect runs f against the replica inside the event loop.
func (n *Node) inspect(f func(r *smr.Replica)) bool {
	return n.proc.Inspect(func(a model.Automaton) { f(core.UnwrapReplica(a)) })
}

// handleRead answers GET /read?key=k from the replica's KV snapshot. Reads
// are local (eventually consistent): the answer reflects this replica's
// current applied prefix.
func (n *Node) handleRead(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	n.markStaleness(w)
	var snap string
	if !n.inspect(func(rep *smr.Replica) { snap = rep.Snapshot() }) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	for _, pair := range strings.Split(snap, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			fmt.Fprintln(w, v)
			return
		}
	}
	http.Error(w, "not found", http.StatusNotFound)
}

// markStaleness stamps degraded responses: reads keep flowing but announce
// that this replica may be arbitrarily behind the rest of the cluster.
func (n *Node) markStaleness(w http.ResponseWriter) {
	if n.Degraded() {
		w.Header().Set("X-Ec-Degraded", "stale")
	}
}

// handleSnapshot answers GET /snapshot with the machine's full snapshot.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	n.markStaleness(w)
	var snap string
	if !n.inspect(func(rep *smr.Replica) { snap = rep.Snapshot() }) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, snap)
}

// Status is the replica's introspection report (GET /status).
type Status struct {
	ID         int    `json:"id"`
	N          int    `json:"n"`
	Leader     int    `json:"leader"`
	Applied    int    `json:"applied"`
	Rebuilds   int    `json:"rebuilds"`
	Accepted   int64  `json:"accepted"`
	Rejected   int64  `json:"rejected"`
	Degraded   bool   `json:"degraded"`
	Dropped    int64  `json:"dropped"`
	Injected   int64  `json:"injected,omitempty"` // faults injected by the chaos layer
	Resends    int64  `json:"resends"`
	Duplicates int64  `json:"duplicates"`
	Pending    int    `json:"pending"`
	Abandoned  int64  `json:"abandoned"`
	// Transport counters: frames dropped at the inbox (event loop too slow
	// for the arrival rate), the writer's coalescing effectiveness —
	// connection writes performed vs frames that rode an earlier write — and
	// peer-connection re-dial attempts.
	InboxDropped int64 `json:"inbox_dropped"`
	Flushes      int64 `json:"flushes"`
	Coalesced    int64 `json:"coalesced"`
	Redials      int64 `json:"redials"`
	// LeaderFlaps counts changes of this process's heartbeat-Ω output — the
	// oscillation the paper's eventual guarantees ask to see settle.
	LeaderFlaps int64 `json:"leader_flaps"`
	// DedupSparse is the receiver-side dedup footprint (out-of-order seqnos
	// held beyond the compact watermark).
	DedupSparse int `json:"dedup_sparse"`
	// Broadcast batching counters (zero when Config.Batch is off): update
	// broadcasts emitted (split by trigger — depth-reached vs linger-expired),
	// commands that rode them, the current batch-size target, and commands
	// still queued for the next window. Undelivered is the broadcast layer's
	// submitted-but-not-yet-delivered backlog (nonzero also without batching).
	BatchFlushes       int64  `json:"batch_flushes,omitempty"`
	BatchFullFlushes   int64  `json:"batch_full_flushes,omitempty"`
	BatchLingerFlushes int64  `json:"batch_linger_flushes,omitempty"`
	BatchOps           int64  `json:"batch_ops,omitempty"`
	BatchTarget        int    `json:"batch_target,omitempty"`
	BatchQueued        int    `json:"batch_queued,omitempty"`
	Undelivered        int    `json:"undelivered"`
	Snapshot           string `json:"snapshot"`
}

// handleStatus serves the introspection report off the metrics registry: one
// Collect() runs the scrape hook (a single Proc.Inspect snapshotting the
// protocol stack and the machine), then every field is a registry read. The
// report and GET /metrics are therefore the same numbers by construction.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	select {
	case <-n.proc.Done():
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	default:
	}
	n.reg.Collect()
	n.snapMu.Lock()
	snap := n.snap
	n.snapMu.Unlock()
	st := Status{
		ID:          int(n.cfg.ID),
		N:           n.proc.N(),
		Leader:      int(n.reg.Value(obs.MetricOmegaLeader)),
		Applied:     int(n.reg.Value(obs.MetricSMRApplied)),
		Rebuilds:    int(n.reg.Value(obs.MetricSMRRebuilds)),
		Accepted:    n.reg.Value(obs.MetricNodeAccepted),
		Rejected:    n.reg.Value(obs.MetricNodeRejected),
		Degraded:    n.reg.Value(obs.MetricNodeDegraded) != 0,
		Dropped:     n.reg.Value(obs.MetricTransportDropped),
		Resends:     n.reg.Value(obs.MetricRetransmitResends),
		Duplicates:  n.reg.Value(obs.MetricRetransmitDuplicates),
		Pending:     int(n.reg.Value(obs.MetricRetransmitPending)),
		Abandoned:   n.reg.Value(obs.MetricRetransmitAbandoned),
		DedupSparse: int(n.reg.Value(obs.MetricRetransmitSparse)),

		InboxDropped: n.reg.Value(obs.MetricTransportInboxDrop),
		Flushes:      n.reg.Value(obs.MetricTransportFlushes),
		Coalesced:    n.reg.Value(obs.MetricTransportCoalesced),
		Redials:      n.reg.Value(obs.MetricTransportRedials),
		LeaderFlaps:  n.reg.Value(obs.MetricOmegaFlaps),

		BatchFlushes:       n.reg.Value(obs.MetricBatchFlushes),
		BatchFullFlushes:   n.reg.Value(obs.MetricBatchFullFlushes),
		BatchLingerFlushes: n.reg.Value(obs.MetricBatchLingerFlushes),
		BatchOps:           n.reg.Value(obs.MetricBatchOps),
		BatchTarget:        int(n.reg.Value(obs.MetricBatchTarget)),
		BatchQueued:        int(n.reg.Value(obs.MetricBatchQueued)),
		Undelivered:        int(n.reg.Value(obs.MetricEtobUndelivered)),
	}
	if n.fault != nil {
		st.Injected = n.reg.Value(obs.MetricTransportInjected)
	}
	st.Snapshot = snap
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleHealthz answers load-balancer probes: 200 while serving, 503 once
// draining so the front door routes around a node that is on its way out.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if n.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
