// Package node wraps one service replica as a deployable process: the same
// automaton stack the simulator and the in-process cluster run
// (core.ReplicaStack — retransmission, broadcast protocol, replicated
// machine), driven by a runtime.Proc over a real TCP transport, fronted by a
// small HTTP API for client operations and introspection.
//
// A Node is what cmd/ecnode boots per replica. Its layers, bottom up:
//
//   - runtime.TCPTransport: length-prefixed gob frames over reconnecting
//     per-peer connections. Delivery is at-most-once; reconnection is the
//     transport's job.
//   - retransmit.Wrap: restores the paper's eventual-delivery assumption over
//     that lossy wire — and, because a deployable node must not leak against
//     a peer that is gone for good, enables the sender-side give-up bound
//     (Options.GiveUpTicks) sized well above the expected churn scale.
//   - runtime.Proc: the event loop with the heartbeat Ω — the failure
//     detector actually implemented from message passing.
//   - HTTP (this package): POST /update submits commands, GET /read and
//     /snapshot read the replica's machine, /status reports replication
//     internals, /healthz answers load-balancer probes.
//
// Restart identity: the node pins the process clock to the Unix epoch
// (runtime.Options.ClockEpoch), so a restarted replica initializes its
// retransmission layer with a strictly larger incarnation epoch instead of
// colliding with its previous life — receiver-side dedup then distinguishes
// the two incarnations' envelope streams by construction.
//
// Shutdown is graceful and load-balancer-aware: Shutdown first flips
// /healthz to failing and deregisters from the front door (internal/lb), so
// no new operations are routed here; then it drains in-flight HTTP requests;
// only then does it stop the event loop and close the transport. A client
// driving operations through the front door across a rolling restart
// observes zero failed operations (the node package's integration test pins
// this).
package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/smr"
)

// RegisterProtocolTypes registers the replica stack's full wire vocabulary
// with the gob codec: retransmission envelopes and the broadcast protocol
// messages they carry. Every process of a cluster must call it (node.New
// does) before frames flow.
func RegisterProtocolTypes() {
	runtime.RegisterWireType(retransmit.Data{})
	runtime.RegisterWireType(retransmit.Ack{})
	runtime.RegisterWireType(etob.UpdateMsg{})
	runtime.RegisterWireType(etob.PromoteMsg{})
}

// DefaultGiveUpTicks is the node's default sender-side persistence bound:
// with the default 2ms tick this is ~60s of link silence — far above restart
// and reconnect scales — before a capped-backoff envelope is abandoned.
const DefaultGiveUpTicks = 30000

// Config configures one replica node.
type Config struct {
	// ID is this replica's process ID (1..n).
	ID model.ProcID
	// Peers maps every replica — ID included — to its TRANSPORT address
	// (host:port for the inter-replica TCP mesh, not the HTTP API).
	Peers map[model.ProcID]string
	// HTTPAddr is the client-facing HTTP listen address (default
	// "127.0.0.1:0").
	HTTPAddr string
	// Front, if non-empty, is the front door's base URL (internal/lb); the
	// node registers itself on start and deregisters on Shutdown.
	Front string
	// Consistency selects the protocol (default core.Eventual).
	Consistency core.Consistency
	// Machine is the replicated state machine (default KV store).
	Machine smr.MachineFactory
	// Runtime tunes the event loop. ClockEpoch is forced to the Unix epoch
	// (see the package comment); everything else passes through.
	Runtime runtime.Options
	// Retransmit tunes the retransmission layer. Nil gets a per-ID seed and
	// DefaultGiveUpTicks.
	Retransmit *retransmit.Options
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Node is one running replica.
type Node struct {
	cfg   Config
	tr    *runtime.TCPTransport
	proc  *runtime.Proc
	srv   *http.Server
	ln    net.Listener
	rt    retransmit.Options
	front string

	draining  atomic.Bool
	accepted  atomic.Int64
	closeOnce sync.Once
	httpDone  chan struct{}
}

// New builds and starts a replica node: transport bound, event loop running,
// HTTP API serving, front-door registration done (when configured).
func New(cfg Config) (*Node, error) {
	if cfg.ID < 1 {
		return nil, fmt.Errorf("node: invalid replica ID %v", cfg.ID)
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	rt := retransmit.Options{Seed: int64(cfg.ID), GiveUpTicks: DefaultGiveUpTicks}
	if cfg.Retransmit != nil {
		rt = *cfg.Retransmit
	}
	RegisterProtocolTypes()
	tr, err := runtime.NewTCPTransport(runtime.TCPConfig{Self: cfg.ID, Peers: cfg.Peers})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		tr.Close()
		return nil, fmt.Errorf("node: http listen %s: %w", cfg.HTTPAddr, err)
	}
	opts := cfg.Runtime
	opts.ClockEpoch = time.Unix(0, 0)
	n := &Node{
		cfg:      cfg,
		tr:       tr,
		rt:       rt,
		front:    strings.TrimRight(cfg.Front, "/"),
		ln:       ln,
		httpDone: make(chan struct{}),
	}
	n.proc = runtime.NewProc(tr, core.ReplicaStack(cfg.Consistency, cfg.Machine, &rt), opts)

	mux := http.NewServeMux()
	mux.HandleFunc("/update", n.handleUpdate)
	mux.HandleFunc("/read", n.handleRead)
	mux.HandleFunc("/snapshot", n.handleSnapshot)
	mux.HandleFunc("/status", n.handleStatus)
	mux.HandleFunc("/healthz", n.handleHealthz)
	n.srv = &http.Server{Handler: mux}
	go func() {
		defer close(n.httpDone)
		err := n.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			n.logf("node %v: http serve: %v", cfg.ID, err)
		}
	}()

	if n.front != "" {
		if err := n.register(); err != nil {
			n.logf("node %v: front-door registration failed: %v", cfg.ID, err)
		}
	}
	return n, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// ID returns the replica's process ID.
func (n *Node) ID() model.ProcID { return n.cfg.ID }

// HTTPAddr returns the address the HTTP API actually listens on.
func (n *Node) HTTPAddr() string { return n.ln.Addr().String() }

// URL returns the HTTP API base URL.
func (n *Node) URL() string { return "http://" + n.HTTPAddr() }

// Proc exposes the underlying event loop (tests and cmd/ecnode diagnostics).
func (n *Node) Proc() *runtime.Proc { return n.proc }

// Accepted returns how many update operations this node has accepted.
func (n *Node) Accepted() int64 { return n.accepted.Load() }

// register announces this replica to the front door, retrying briefly so a
// node booting alongside its front door wins the race.
func (n *Node) register() error {
	v := url.Values{"id": {fmt.Sprint(int(n.cfg.ID))}, "url": {n.URL()}}
	target := n.front + "/register?" + v.Encode()
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		resp, err := http.Post(target, "text/plain", nil)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("front door answered %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

// deregister withdraws this replica from the front door (best effort).
func (n *Node) deregister() {
	v := url.Values{"id": {fmt.Sprint(int(n.cfg.ID))}}
	resp, err := http.Post(n.front+"/deregister?"+v.Encode(), "text/plain", nil)
	if err != nil {
		n.logf("node %v: deregister: %v", n.cfg.ID, err)
		return
	}
	resp.Body.Close()
}

// Shutdown stops the node gracefully, in the order that costs clients
// nothing: leave the front door and fail health probes first (no NEW
// operations are routed here), drain in-flight HTTP work (operations already
// here complete — the replica keeps accepting until its event loop actually
// stops), flush the retransmission layer's unacked envelopes so every
// accepted command has reached the surviving replicas, and only then stop
// the event loop and close the transport. Safe to call more than once.
func (n *Node) Shutdown(ctx context.Context) error {
	var err error
	n.closeOnce.Do(func() {
		n.draining.Store(true)
		if n.front != "" {
			n.deregister()
		}
		err = n.srv.Shutdown(ctx)
		<-n.httpDone
		n.flushPending(ctx)
		n.proc.Stop() // closes the transport too
		select {
		case <-n.proc.Done():
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	})
	return err
}

// flushPending waits (bounded by ctx) until the retransmission layer holds no
// unacked envelopes — every command this node accepted and broadcast has been
// acknowledged by every peer — so stopping the transport loses nothing. A
// peer that is itself down keeps envelopes pending; the context bounds how
// long departure waits for it.
func (n *Node) flushPending(ctx context.Context) {
	for {
		pending := 0
		ok := n.proc.Inspect(func(a model.Automaton) {
			if wrap, isWrapped := a.(*retransmit.Automaton); isWrapped {
				pending = wrap.PendingEnvelopes()
			}
		})
		if !ok || pending == 0 {
			return
		}
		select {
		case <-ctx.Done():
			n.logf("node %v: leaving with %d unacked envelopes (flush budget exhausted)", n.cfg.ID, pending)
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Kill stops the node abruptly — no deregistration, no drain — simulating a
// crash (the front door's health probes must evict it). Tests only.
func (n *Node) Kill() {
	n.closeOnce.Do(func() {
		n.draining.Store(true)
		n.srv.Close()
		<-n.httpDone
		n.proc.Stop()
		<-n.proc.Done()
	})
}

// handleUpdate accepts a command (query parameter "cmd", or the request body
// when absent) and submits it to the replica. 202 means accepted for
// replication, not yet applied — this is an eventually consistent service.
func (n *Node) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	cmd := r.URL.Query().Get("cmd")
	if cmd == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cmd = strings.TrimSpace(string(body))
	}
	if cmd == "" {
		http.Error(w, "empty command", http.StatusBadRequest)
		return
	}
	// Note: a DRAINING node still accepts — operations routed here before the
	// front door saw the deregistration must succeed, and the shutdown path
	// flushes their replication before the event loop stops. Only an actually
	// stopped event loop refuses.
	if !n.proc.Submit(smr.Command{Cmd: cmd}) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	n.accepted.Add(1)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "accepted")
}

// inspect runs f against the replica inside the event loop.
func (n *Node) inspect(f func(r *smr.Replica)) bool {
	return n.proc.Inspect(func(a model.Automaton) { f(core.UnwrapReplica(a)) })
}

// handleRead answers GET /read?key=k from the replica's KV snapshot. Reads
// are local (eventually consistent): the answer reflects this replica's
// current applied prefix.
func (n *Node) handleRead(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	var snap string
	if !n.inspect(func(rep *smr.Replica) { snap = rep.Snapshot() }) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	for _, pair := range strings.Split(snap, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			fmt.Fprintln(w, v)
			return
		}
	}
	http.Error(w, "not found", http.StatusNotFound)
}

// handleSnapshot answers GET /snapshot with the machine's full snapshot.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap string
	if !n.inspect(func(rep *smr.Replica) { snap = rep.Snapshot() }) {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, snap)
}

// Status is the replica's introspection report (GET /status).
type Status struct {
	ID        int    `json:"id"`
	N         int    `json:"n"`
	Leader    int    `json:"leader"`
	Applied   int    `json:"applied"`
	Rebuilds  int    `json:"rebuilds"`
	Accepted  int64  `json:"accepted"`
	Dropped   int64  `json:"dropped"`
	Resends   int64  `json:"resends"`
	Pending   int    `json:"pending"`
	Abandoned int64  `json:"abandoned"`
	Snapshot  string `json:"snapshot"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{
		ID:       int(n.cfg.ID),
		N:        n.proc.N(),
		Leader:   int(n.proc.Leader()),
		Accepted: n.accepted.Load(),
		Dropped:  n.tr.Dropped(),
	}
	ok := n.proc.Inspect(func(a model.Automaton) {
		if wrap, isWrapped := a.(*retransmit.Automaton); isWrapped {
			st.Resends = wrap.Resends()
			st.Pending = wrap.PendingEnvelopes()
			st.Abandoned = wrap.Abandoned()
		}
		rep := core.UnwrapReplica(a)
		st.Applied = rep.AppliedCount()
		st.Rebuilds = rep.Rebuilds()
		st.Snapshot = rep.Snapshot()
	})
	if !ok {
		http.Error(w, "replica stopped", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleHealthz answers load-balancer probes: 200 while serving, 503 once
// draining so the front door routes around a node that is on its way out.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if n.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
