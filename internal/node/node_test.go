package node_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/runtime"
)

// testClient bounds every client call so a wedged front door fails a test
// instead of hanging it into the suite timeout.
var testClient = &http.Client{Timeout: 45 * time.Second}

// cluster is a live 3-replica service behind a front door, entirely on
// loopback — the deployable topology, in-process for testability.
type cluster struct {
	front   *lb.Front
	nodes   []*node.Node
	peers   map[model.ProcID]string
	cfgHook func(*node.Config) // optional per-node config mutation (chaos tests)
}

func newCluster(t *testing.T, n int) *cluster {
	return newClusterWith(t, n, nil)
}

// newClusterWith boots a cluster whose every node config first passes
// through hook — the chaos tests use it to wire fault injectors and degraded
// windows into otherwise-standard replicas.
func newClusterWith(t *testing.T, n int, hook func(*node.Config)) *cluster {
	t.Helper()
	front, err := lb.New(lb.Config{
		ProbeInterval: 50 * time.Millisecond,
		// Generous probe timeout: under the race detector a loaded replica can
		// take tens of milliseconds to answer /healthz, and that slowness must
		// not read as death.
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatalf("front door: %v", err)
	}
	peers := make(map[model.ProcID]string, n)
	var reserved []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peers[model.ProcID(i+1)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}
	c := &cluster{front: front, peers: peers, cfgHook: hook}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, c.startNode(t, model.ProcID(i+1)))
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			if nd != nil {
				nd.Kill()
			}
		}
		front.Close()
	})
	return c
}

// startNode boots (or re-boots) replica p on its reserved transport address.
func (c *cluster) startNode(t *testing.T, p model.ProcID) *node.Node {
	t.Helper()
	var nd *node.Node
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		cfg := node.Config{
			ID:    p,
			Peers: clonePeers(c.peers),
			Front: c.front.URL(),
			// Run the event loops at a 10ms cadence instead of the 2ms
			// production default: a test boots up to two 3-replica clusters in
			// one process, and under the race detector six 2ms loops saturate
			// the scheduler and starve the HTTP handlers the front door probes.
			Runtime: runtime.Options{
				TickInterval:      10 * time.Millisecond,
				HeartbeatInterval: 10 * time.Millisecond,
			},
		}
		if c.cfgHook != nil {
			c.cfgHook(&cfg)
		}
		nd, err = node.New(cfg)
		if err == nil {
			return nd
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("start replica %v: %v", p, err)
	return nil
}

func clonePeers(m map[model.ProcID]string) map[model.ProcID]string {
	out := make(map[model.ProcID]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// update posts one command through the front door under a session key and
// reports whether it was accepted.
func (c *cluster) update(session, cmd string) error {
	req, err := http.NewRequest(http.MethodPost,
		c.front.URL()+"/update?cmd="+strings.ReplaceAll(cmd, " ", "+"), nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Session", session)
	resp, err := testClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("update %q: %s: %s", cmd, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// status fetches a replica's /status directly.
func nodeStatus(nd *node.Node) (node.Status, error) {
	var st node.Status
	resp, err := testClient.Get(nd.URL() + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitConverged waits until every listed node has applied at least minApplied
// commands and all snapshots are identical and contain every want pair.
func waitConverged(t *testing.T, nodes []*node.Node, minApplied int, want map[string]string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	var last []string
	for time.Now().Before(deadline) {
		last = last[:0]
		ok := true
		ref := ""
		for i, nd := range nodes {
			st, err := nodeStatus(nd)
			if err != nil {
				ok = false
				last = append(last, fmt.Sprintf("%v: %v", nd.ID(), err))
				break
			}
			last = append(last, fmt.Sprintf("%v: applied=%d snap=%s", nd.ID(), st.Applied, st.Snapshot))
			if st.Applied < minApplied {
				ok = false
				break
			}
			if i == 0 {
				ref = st.Snapshot
			} else if st.Snapshot != ref {
				ok = false
				break
			}
		}
		if ok && ref != "" {
			for k, v := range want {
				if !hasPair(ref, k+"="+v) {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replicas did not converge within %v:\n%s", within, strings.Join(last, "\n"))
}

// waitHealthy waits until the front door routes to exactly n replicas.
func waitHealthy(t *testing.T, c *cluster, n int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for len(c.front.Healthy()) != n {
		if time.Now().After(deadline) {
			t.Fatalf("front door healthy=%v, want %d replicas", c.front.Healthy(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func hasPair(snapshot, pair string) bool {
	for _, p := range strings.Split(snapshot, ",") {
		if p == pair {
			return true
		}
	}
	return false
}

// TestClusterConvergesThroughFront is the basic service-plane path: three
// replica processes behind the front door, client operations spread over
// sessions, every replica converging to the same state containing every
// update.
func TestClusterConvergesThroughFront(t *testing.T) {
	c := newCluster(t, 3)
	const updates = 30
	want := make(map[string]string, updates)
	for i := 0; i < updates; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := c.update(fmt.Sprintf("session-%d", i%7), "set "+k+" "+v); err != nil {
			t.Fatalf("update %d failed: %v", i, err)
		}
	}
	waitConverged(t, c.nodes, updates, want, 30*time.Second)
}

// TestSessionAffinity: the same session sticks to the same replica while the
// replica set is stable.
func TestSessionAffinity(t *testing.T) {
	c := newCluster(t, 3)
	// Wait until all replicas are registered and healthy.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.front.Healthy()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("replicas never all healthy: %v", c.front.Healthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, session := range []string{"alpha", "beta", "gamma", "delta"} {
		var first string
		for i := 0; i < 5; i++ {
			req, _ := http.NewRequest(http.MethodPost, c.front.URL()+"/update?cmd=set+s+1", nil)
			req.Header.Set("X-Session", session)
			resp, err := testClient.Do(req)
			if err != nil {
				t.Fatalf("session %s: %v", session, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			got := resp.Header.Get("X-Replica")
			if got == "" {
				t.Fatalf("session %s: no X-Replica header", session)
			}
			if first == "" {
				first = got
			} else if got != first {
				t.Fatalf("session %s bounced from replica %s to %s with a stable replica set", session, first, got)
			}
		}
	}
}

// TestGracefulShutdownZeroFailedOps is the rolling-restart guarantee: while a
// client streams operations through the front door, one replica shuts down
// gracefully — deregisters, drains, flushes replication, stops. The client
// must see ZERO failed operations, and the surviving replicas must converge
// on every accepted update, including those the departing replica accepted
// just before leaving.
func TestGracefulShutdownZeroFailedOps(t *testing.T) {
	c := newCluster(t, 3)
	const updates = 120
	want := make(map[string]string, updates)
	for i := 0; i < updates; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := c.update(fmt.Sprintf("s%d", i%11), "set "+k+" "+v); err != nil {
			t.Fatalf("op %d FAILED during rolling shutdown (want zero failures): %v", i, err)
		}
		if i == updates/2 {
			// Mid-stream: replica 3 leaves gracefully.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := c.nodes[2].Shutdown(ctx); err != nil {
				t.Fatalf("graceful shutdown: %v", err)
			}
			cancel()
			c.nodes = c.nodes[:2]
		}
	}
	if healthy := c.front.Healthy(); len(healthy) != 2 {
		t.Errorf("front door still routes to %v, want 2 replicas after deregistration", healthy)
	}
	waitConverged(t, c.nodes, updates, want, 30*time.Second)
}

// TestKillRestartConvergesThroughFront is the crash half of the service
// plane's fault story: a replica dies WITHOUT deregistering — health probes
// must evict it (operations keep succeeding via failover) — then comes back
// under the same identity and transport address. The transport's redial loop
// heals the mesh, the retransmission layer recovers what the outage lost,
// promote traffic rebuilds the restarted replica's state, and all three
// replicas converge on every update of all three phases.
func TestKillRestartConvergesThroughFront(t *testing.T) {
	c := newCluster(t, 3)
	want := make(map[string]string)
	phase := func(tag string, count int) {
		for i := 0; i < count; i++ {
			k, v := fmt.Sprintf("%s%d", tag, i), fmt.Sprintf("v%d", i)
			want[k] = v
			var err error
			for attempt := 0; attempt < 50; attempt++ {
				// During the un-evicted crash window a forward can land on the
				// dead replica; the front door fails over transparently, but
				// allow brief retries for the probe loop to catch up.
				if err = c.update(fmt.Sprintf("s%d", i%5), "set "+k+" "+v); err == nil {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("phase %s op %d: %v", tag, i, err)
			}
		}
	}
	phase("a", 20)

	c.nodes[1].Kill() // replica 2 crashes; no deregistration
	// Health probes must evict it.
	deadline := time.Now().Add(10 * time.Second)
	for len(c.front.Healthy()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("crashed replica never evicted; healthy=%v", c.front.Healthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	phase("b", 20)

	c.nodes[1] = c.startNode(t, 2) // same ID, same transport address
	deadline = time.Now().Add(10 * time.Second)
	for len(c.front.Healthy()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never rejoined; healthy=%v", c.front.Healthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	phase("c", 20)

	waitConverged(t, c.nodes, 60, want, 60*time.Second)
}
