#!/usr/bin/env bash
# chaos_smoke.sh — run the service plane's chaos soak at its pinned seed under
# the race detector and emit the machine-readable run summary. The soak
# (internal/node TestChaosSoakConvergesUnderScriptedFaults) boots four
# replicas behind the front door, wraps every transport in the seeded live
# fault injector, and scripts a partition/heal plus a kill/restart over an
# open-loop client stream; the degraded-mode test rides along in the same
# package. Every injector decision is a pure function of (seed, link, frame
# index), so a failure here reproduces locally with the same seed.
set -euo pipefail

cd "$(dirname "$0")/.."

# `go test` runs each test binary in its package directory, so a relative
# summary path would land under internal/node — resolve it here first.
SUMMARY="${CHAOS_SUMMARY:-chaos_summary.json}"
case "$SUMMARY" in
  /*) ;;
  *) SUMMARY="$PWD/$SUMMARY" ;;
esac
export CHAOS_SUMMARY="$SUMMARY"

go test -race -count=1 \
  -run 'TestChaosSoak|TestDegraded' \
  ./internal/node

if [ -f "$SUMMARY" ]; then
  echo "chaos summary ($SUMMARY):"
  cat "$SUMMARY"
else
  echo "FAIL: soak did not write $SUMMARY" >&2
  exit 1
fi
