#!/usr/bin/env bash
# node_smoke.sh — boot the deployable service plane as real OS processes and
# prove it converges: build cmd/ecnode, start a front door plus three replica
# processes, push $UPDATES client operations through the load balancer, and
# assert that every replica applies all of them and lands on the identical
# snapshot. This is the out-of-process counterpart to internal/node's
# in-process integration tests — it exercises the actual binary, flag
# parsing, registration, and OS signal handling.
set -euo pipefail

UPDATES="${UPDATES:-1000}"
BASE_PORT="${BASE_PORT:-17800}"
FRONT_PORT=$((BASE_PORT))
T1=$((BASE_PORT + 1)) T2=$((BASE_PORT + 2)) T3=$((BASE_PORT + 3))
H1=$((BASE_PORT + 11)) H2=$((BASE_PORT + 12)) H3=$((BASE_PORT + 13))
FRONT="http://127.0.0.1:${FRONT_PORT}"
PEERS="1=127.0.0.1:${T1},2=127.0.0.1:${T2},3=127.0.0.1:${T3}"

cd "$(dirname "$0")/.."
go build -o bin/ecnode ./cmd/ecnode

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

./bin/ecnode -front-door -http "127.0.0.1:${FRONT_PORT}" &
pids+=($!)
for i in 1 2 3; do
  hp=$((BASE_PORT + 10 + i))
  ./bin/ecnode -id "$i" -peers "$PEERS" -http "127.0.0.1:${hp}" -front "$FRONT" &
  pids+=($!)
done

echo "waiting for 3 healthy replicas behind $FRONT"
for _ in $(seq 1 100); do
  n=$(curl -sf "$FRONT/replicas" 2>/dev/null | grep -c ' true$' || true)
  [ "$n" = 3 ] && break
  sleep 0.1
done
[ "$(curl -sf "$FRONT/replicas" | grep -c ' true$')" = 3 ] || {
  echo "FAIL: replicas never all registered healthy"; curl -s "$FRONT/replicas"; exit 1
}

echo "pushing $UPDATES updates through the front door"
for i in $(seq 1 "$UPDATES"); do
  code=$(curl -s -o /dev/null -w '%{http_code}' \
    -H "X-Session: s$((i % 17))" \
    -X POST "$FRONT/update?cmd=set+k${i}+v${i}")
  if [ "$code" != 202 ]; then
    echo "FAIL: update $i got HTTP $code"; exit 1
  fi
done

echo "waiting for convergence on all 3 replicas"
deadline=$((SECONDS + 120))
while true; do
  snaps=()
  applied_ok=1
  for hp in "$H1" "$H2" "$H3"; do
    st=$(curl -sf "http://127.0.0.1:${hp}/status" || echo '{}')
    applied=$(echo "$st" | jq -r '.applied // 0')
    [ "$applied" -ge "$UPDATES" ] || applied_ok=0
    snaps+=("$(echo "$st" | jq -r '.snapshot // ""')")
  done
  if [ "$applied_ok" = 1 ] && [ -n "${snaps[0]}" ] \
     && [ "${snaps[0]}" = "${snaps[1]}" ] && [ "${snaps[1]}" = "${snaps[2]}" ]; then
    break
  fi
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "FAIL: replicas did not converge"; printf '%s\n' "${snaps[@]}" | cut -c1-120; exit 1
  fi
  sleep 0.25
done

# Spot-check content: first, middle, and last update must be in the snapshot.
snap="${snaps[0]}"
for i in 1 $((UPDATES / 2)) "$UPDATES"; do
  case ",$snap," in
    *",k${i}=v${i},"*) ;;
    *) echo "FAIL: converged snapshot missing k${i}=v${i}"; exit 1 ;;
  esac
done

echo "OK: 3 replicas converged on ${UPDATES} updates through the front door"
