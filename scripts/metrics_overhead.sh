#!/usr/bin/env bash
# metrics_overhead.sh — the observability plane's overhead gate. Runs the
# registry-off and registry-on kernel benchmarks (internal/core
# BenchmarkKernelMetricsOff/On: the same lossy batched 3-replica service run,
# the On variant carrying a wired obs.Registry plus one end-of-run scrape)
# and fails if the monitored kernel's ns/op floor is more than
# MAX_REGRESS_PCT above the unmonitored one.
#
# Measurement discipline, learned the hard way on 1-core shared runners:
#  - iterations are PINNED (-benchtime=Nx) for the same reason ci.yml pins
#    its smoke benchmarks — calibrated iteration counts measure different
#    work run to run;
#  - the test binary is built ONCE and the two variants run INTERLEAVED
#    (Off,On,Off,On,...), so neither side systematically samples a later —
#    hotter or more CPU-starved — slice of the machine;
#  - the gate compares the MINIMUM ns/op across samples, not the mean or
#    median: wall-clock noise on a shared runner is strictly additive (steal,
#    scheduling), so the per-variant floor converges on the true cost while
#    single samples swing ±30% on identical code. Measured here: the floors
#    agree within ~0.1%; a per-step instrumentation leak would move the On
#    floor by far more than the 5% gate.
# The allocation side needs no statistics — allocs/op is deterministic, and
# the On variant's fixed per-run overhead (registry construction +
# registration + one scrape) is gated as an absolute allocs/op budget.
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-5}"
MAX_EXTRA_ALLOCS="${MAX_EXTRA_ALLOCS:-500}"
SAMPLES="${SAMPLES:-10}"
BENCHTIME="${BENCHTIME:-30x}"

bin="$(mktemp -t core.test.XXXXXX)"
trap 'rm -f "$bin"' EXIT
go test -c -o "$bin" ./internal/core

tmp="$(mktemp -t overhead.XXXXXX)"
trap 'rm -f "$bin" "$tmp"' EXIT
for ((i = 0; i < SAMPLES; i++)); do
  for v in Off On; do
    "$bin" -test.run '^$' -test.bench "BenchmarkKernelMetrics${v}\$" \
      -test.benchtime="$BENCHTIME" -test.benchmem 2>/dev/null \
      | awk -v v="$v" '/^Benchmark/{print v, $3, $7}' >>"$tmp"
  done
done

echo "samples (variant ns/op allocs/op):"
cat "$tmp"

awk -v maxpct="$MAX_REGRESS_PCT" -v maxallocs="$MAX_EXTRA_ALLOCS" '
  {
    if (!($1 in ns) || $2 < ns[$1]) ns[$1] = $2
    if (!($1 in al) || $3 > al[$1]) al[$1] = $3   # allocs are deterministic; max = any
    seen[$1]++
  }
  END {
    if (!seen["Off"] || !seen["On"]) { print "FAIL: missing benchmark samples" > "/dev/stderr"; exit 1 }
    pct = (ns["On"] - ns["Off"]) / ns["Off"] * 100
    extra = al["On"] - al["Off"]
    printf "metrics overhead: floor off=%d ns/op on=%d ns/op delta=%+.2f%% (gate: +%s%%)\n", ns["Off"], ns["On"], pct, maxpct
    printf "metrics allocs:   off=%d/op on=%d/op extra=%d (budget: %d)\n", al["Off"], al["On"], extra, maxallocs
    bad = 0
    if (pct > maxpct)      { printf "FAIL: metrics-on kernel ns/op regressed past the %s%% gate\n", maxpct > "/dev/stderr"; bad = 1 }
    if (extra > maxallocs) { printf "FAIL: metrics-on kernel allocates %d extra allocs/op (budget %d)\n", extra, maxallocs > "/dev/stderr"; bad = 1 }
    exit bad
  }' "$tmp"
