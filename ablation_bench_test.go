package repro

import (
	"fmt"
	"testing"

	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Ablation benches for the design decisions flagged in DESIGN.md (◊):
// promote cadence, scheduler delay spread, and dependency-declaration
// strategy. Each reports the headline metric as a custom unit.

// BenchmarkAblationPromoteCadence varies the λ-step (promote) interval
// relative to a fixed link delay D: the measured delivery latency should be
// 2 steps plus the expected wait for the leader's next promote — showing the
// "2 communication steps" claim is about message delays, with the timeout an
// additive, tunable term.
func BenchmarkAblationPromoteCadence(b *testing.B) {
	const delay = 1000
	for _, tick := range []model.Time{1, 100, 500, 1000} {
		b.Run(fmt.Sprintf("tick=%d", tick), func(b *testing.B) {
			var total float64
			var count int
			for i := 0; i < b.N; i++ {
				fp := model.NewFailurePattern(3)
				det := fd.NewOmegaStable(fp, 1)
				rec := trace.NewRecorder(3)
				k := sim.New(fp, det, etob.Factory(), sim.Options{
					Seed: int64(i + 1), MinDelay: delay, MaxDelay: delay,
					TickInterval: tick, MaxTime: 1 << 40,
				})
				k.SetObserver(rec)
				// Random phase w.r.t. the tick grid, so the expected wait for
				// the leader's next promote (≈ tick/2) is visible.
				at := model.Time(10_000 + (i*777)%1000)
				k.ScheduleInput(2, at, model.BroadcastInput{ID: "m"})
				k.RunUntil(at+20*delay, func(*sim.Kernel) bool {
					return rec.AllDelivered(fp.Correct(), []string{"m"})
				})
				k.Run(k.Now() + 3*delay)
				for _, p := range fp.Correct() {
					if st, ok := rec.StableDeliveryTime(p, "m"); ok {
						total += float64(st-at) / delay
						count++
					}
				}
			}
			if count > 0 {
				b.ReportMetric(total/float64(count), "steps")
			}
		})
	}
}

// BenchmarkAblationDelaySpread varies the link-delay spread (min..max) and
// reports the measured ETOB stabilization τ under a fixed Ω stabilization:
// more reordering widens the divergence window the checkers observe.
func BenchmarkAblationDelaySpread(b *testing.B) {
	type spread struct{ lo, hi model.Time }
	for _, s := range []spread{{10, 10}, {10, 40}, {10, 160}} {
		b.Run(fmt.Sprintf("delay=%d..%d", s.lo, s.hi), func(b *testing.B) {
			var tauSum float64
			for i := 0; i < b.N; i++ {
				fp := model.NewFailurePattern(4)
				det := fd.NewOmegaSplit(fp, 2, 1, 1, 1200)
				rec := trace.NewRecorder(4)
				k := sim.New(fp, det, etob.Factory(), sim.Options{
					Seed: int64(i + 1), MinDelay: s.lo, MaxDelay: s.hi,
				})
				k.SetObserver(rec)
				var ids []string
				for m := 0; m < 8; m++ {
					id := fmt.Sprintf("m%d", m)
					ids = append(ids, id)
					k.ScheduleInput(model.ProcID(m%4+1), model.Time(20+3*m), model.BroadcastInput{ID: id})
				}
				k.RunUntil(20000, func(k *sim.Kernel) bool {
					return k.Now() > 1500 && rec.AllDelivered(fp.Correct(), ids)
				})
				k.Run(k.Now() + 500)
				rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{})
				tauSum += float64(rep.Tau)
			}
			b.ReportMetric(tauSum/float64(b.N), "tau")
		})
	}
}

// BenchmarkAblationDependencyStrategy compares protocol-computed frontier
// dependencies against client-declared chains: the frontier strategy keeps
// the causality graph dense (more edges) but still linearizes in the same
// promote time; the metric is messages sent per delivered broadcast.
func BenchmarkAblationDependencyStrategy(b *testing.B) {
	for _, strategy := range []string{"frontier", "explicit-chain", "no-deps"} {
		b.Run(strategy, func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				fp := model.NewFailurePattern(3)
				det := fd.NewOmegaStable(fp, 1)
				rec := trace.NewRecorder(3)
				k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: int64(i + 1)})
				k.SetObserver(rec)
				var ids []string
				prev := ""
				for m := 0; m < 10; m++ {
					id := fmt.Sprintf("m%d", m)
					in := model.BroadcastInput{ID: id}
					switch strategy {
					case "explicit-chain":
						if prev != "" {
							in.Deps = []string{prev}
						}
					case "no-deps":
						in.Deps = []string{} // non-nil empty: no causal constraints
					}
					prev = id
					ids = append(ids, id)
					k.ScheduleInput(model.ProcID(m%3+1), model.Time(20+25*m), in)
				}
				k.RunUntil(20000, func(*sim.Kernel) bool {
					return rec.AllDelivered(fp.Correct(), ids)
				})
				msgs += float64(rec.Sends()) / float64(len(ids))
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/bcast")
		})
	}
}
