package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/trace"
)

// randomPattern builds a failure pattern with up to n-1 random crashes.
func randomPattern(rng *rand.Rand, n int) *model.FailurePattern {
	fp := model.NewFailurePattern(n)
	crashes := rng.Intn(n) // 0..n-1
	perm := rng.Perm(n)
	for i := 0; i < crashes; i++ {
		fp.Crash(model.ProcID(perm[i]+1), model.Time(rng.Intn(2000)))
	}
	return fp
}

// randomOmega builds a random admissible Ω history for the pattern.
func randomOmega(rng *rand.Rand, fp *model.FailurePattern) fd.Detector {
	correct := fp.Correct()
	leader := correct[rng.Intn(len(correct))]
	stab := model.Time(rng.Intn(2500))
	switch rng.Intn(4) {
	case 0:
		return fd.NewOmegaStable(fp, leader)
	case 1:
		return fd.NewOmegaEventual(fp, leader, stab)
	case 2:
		return fd.NewOmegaRotating(fp, leader, stab, model.Time(rng.Intn(80)+10))
	default:
		return fd.NewOmegaSplit(fp, 2, 1, leader, stab)
	}
}

// TestFuzzETOBSafety injects random crashes, random Ω misbehavior, and
// random schedules: the ETOB safety properties (no-creation, no-duplication,
// causal order) and the SMR replay determinism must hold in EVERY run —
// they do not depend on Ω at all.
func TestFuzzETOBSafety(t *testing.T) {
	const runs = 60
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		n := rng.Intn(4) + 2 // 2..5
		fp := randomPattern(rng, n)
		det := randomOmega(rng, fp)
		rec := trace.NewRecorder(n)
		k := sim.New(fp, det, etob.Factory(), sim.Options{
			Seed:     int64(i),
			MinDelay: model.Time(rng.Intn(10) + 1),
			MaxDelay: model.Time(rng.Intn(90) + 11),
		})
		k.SetObserver(rec)
		msgs := rng.Intn(10) + 2
		for m := 0; m < msgs; m++ {
			p := model.ProcID(rng.Intn(n) + 1)
			k.ScheduleInput(p, model.Time(rng.Intn(3000)+10), model.BroadcastInput{ID: fmt.Sprintf("r%d-m%d", i, m)})
		}
		k.Run(8000)
		rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 1, SettleTime: 1})
		if !rep.NoCreation.OK || !rep.NoDuplication.OK || !rep.CausalOrder.OK {
			t.Fatalf("run %d (%v, %s): safety violated: %+v", i, fp, det.Name(), rep)
		}
	}
}

// TestFuzzETOBLivenessWhenStable adds the liveness side: when broadcasts
// happen after Ω has stabilized and enough quiet time follows, every correct
// process must stably deliver everything, in the same order.
func TestFuzzETOBLiveness(t *testing.T) {
	const runs = 30
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(5000 + i)))
		n := rng.Intn(3) + 2
		fp := randomPattern(rng, n)
		leader := fp.Correct()[rng.Intn(len(fp.Correct()))]
		stab := model.Time(rng.Intn(1000))
		det := fd.NewOmegaEventual(fp, leader, stab)
		rec := trace.NewRecorder(n)
		k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: int64(i)})
		k.SetObserver(rec)
		var ids []string
		for m := 0; m < 5; m++ {
			id := fmt.Sprintf("l%d-m%d", i, m)
			ids = append(ids, id)
			// Broadcast from the eventual leader after stabilization plus a
			// margin covering any pending crash (always-correct sender).
			k.ScheduleInput(leader, stab+2100+model.Time(40*m), model.BroadcastInput{ID: id})
		}
		k.RunUntil(60000, func(*sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
		k.Run(k.Now() + 500)
		for _, p := range fp.Correct() {
			for _, id := range ids {
				if _, ok := rec.StableDeliveryTime(p, id); !ok {
					t.Fatalf("run %d: %v never stably delivered %s (fp=%v stab=%d leader=%v)",
						i, p, id, fp, stab, leader)
				}
			}
		}
	}
}

// TestFuzzPaxosSafety: the strong log must never diverge (τ=0) in any run —
// random crashes, random Ω churn, random delays.
func TestFuzzPaxosSafety(t *testing.T) {
	const runs = 40
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i)))
		n := rng.Intn(4) + 2
		fp := randomPattern(rng, n)
		det := randomOmega(rng, fp)
		rec := trace.NewRecorder(n)
		k := sim.New(fp, det, consensus.LogFactory(consensus.MajorityQuorums), sim.Options{
			Seed:     int64(i),
			MinDelay: model.Time(rng.Intn(10) + 1),
			MaxDelay: model.Time(rng.Intn(50) + 11),
		})
		k.SetObserver(rec)
		for m := 0; m < 6; m++ {
			p := model.ProcID(rng.Intn(n) + 1)
			k.ScheduleInput(p, model.Time(rng.Intn(2000)+10), model.BroadcastInput{ID: fmt.Sprintf("p%d-m%d", i, m)})
		}
		k.Run(10000)
		rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 1, SettleTime: 1})
		if !rep.NoCreation.OK || !rep.NoDuplication.OK {
			t.Fatalf("run %d: Paxos safety violated: %+v", i, rep)
		}
		if rep.StabilityTau != 0 || rep.TotalOrderTau != 0 {
			t.Fatalf("run %d (%v, %s): Paxos diverged: stab=%d order=%d",
				i, fp, det.Name(), rep.StabilityTau, rep.TotalOrderTau)
		}
	}
}

// TestFuzzECAgreementAfterStabilization: Algorithm 4 across random
// environments — the spec's k must exist, i.e. once Ω is stable, instances
// agree.
func TestFuzzECAgreement(t *testing.T) {
	const runs = 30
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(3000 + i)))
		n := rng.Intn(4) + 2
		fp := randomPattern(rng, n)
		leader := fp.Correct()[rng.Intn(len(fp.Correct()))]
		stab := model.Time(rng.Intn(1200))
		det := fd.NewOmegaEventual(fp, leader, stab)
		rec := trace.NewRecorder(n)
		driver := func(p model.ProcID, inst int) (string, bool) {
			return fmt.Sprintf("v/%v/%d", p, inst), true
		}
		k := sim.New(fp, det, ec.DrivenFactory(driver), sim.Options{Seed: int64(i)})
		k.SetObserver(rec)
		k.RunUntil(40000, func(k *sim.Kernel) bool {
			return k.Now() > stab+2500 && rec.AllDecided(fp.Correct(), 5)
		})
		rep := trace.CheckEC(rec, fp.Correct(), 5)
		if !rep.OK() {
			t.Fatalf("run %d (%v, stab=%d): EC violated: %+v", i, fp, stab, rep)
		}
	}
}

// TestIntegrationServiceMatrix runs the full core facade across the
// consistency × environment matrix and checks the paper-predicted outcome of
// each cell.
func TestIntegrationServiceMatrix(t *testing.T) {
	type cell struct {
		consistency core.Consistency
		minority    bool // only a minority correct
		wantLive    bool
	}
	cells := []cell{
		{core.Eventual, false, true},
		{core.Eventual, true, true},
		{core.Strong, false, true},
		{core.Strong, true, false},
		{core.StrongSigma, false, true},
		{core.StrongSigma, true, true},
	}
	for _, c := range cells {
		name := fmt.Sprintf("%v/minority=%v", c.consistency, c.minority)
		fp := model.NewFailurePattern(5)
		if c.minority {
			fp.Crash(3, 0)
			fp.Crash(4, 0)
			fp.Crash(5, 0)
		}
		svc := core.NewSimService(core.Config{
			N:           5,
			Consistency: c.consistency,
			Failures:    fp,
			Machine:     smr.CounterFactory,
			Sim:         sim.Options{Seed: 77},
		})
		svc.Submit(1, 30, "inc ops")
		svc.Submit(2, 60, "inc ops")
		svc.Run(100)
		converged := svc.RunUntilConverged(15000)
		if converged != c.wantLive {
			t.Errorf("%s: converged=%v, want %v", name, converged, c.wantLive)
			continue
		}
		if c.wantLive {
			if got := svc.Snapshot(1); got != "ops=2" {
				t.Errorf("%s: snapshot %q, want ops=2", name, got)
			}
		}
	}
}

// TestIntegrationCausalAcrossProtocolStacks: the same causal workload over
// Algorithm 5 directly and over Algorithm 1∘Algorithm 4 — both must respect
// declared causality in every snapshot (Alg 5 guarantees it by construction;
// the Alg-1 stack happens to respect declared deps here because EC decisions
// linearize batches; we only assert for Alg 5, and assert agreement for both).
func TestIntegrationCausalAcrossProtocolStacks(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 400)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: 13})
	k.SetObserver(rec)
	k.ScheduleInput(1, 20, model.BroadcastInput{ID: "root"})
	k.ScheduleInput(2, 140, model.BroadcastInput{ID: "child", Deps: []string{"root"}})
	k.ScheduleInput(3, 260, model.BroadcastInput{ID: "grandchild", Deps: []string{"child"}})
	k.RunUntil(20000, func(*sim.Kernel) bool {
		return rec.AllDelivered(fp.Correct(), []string{"root", "child", "grandchild"})
	})
	k.Run(k.Now() + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{})
	if !rep.CausalOrder.OK {
		t.Fatalf("causal chain violated: %v", rep.CausalOrder.Violations)
	}
	fin := rec.FinalSeq(1)
	if len(fin) != 3 || fin[0] != "root" || fin[1] != "child" || fin[2] != "grandchild" {
		t.Fatalf("final order %v, want the causal chain order", fin)
	}
}
