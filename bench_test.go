// Package repro's top-level benchmarks regenerate every experiment of
// EXPERIMENTS.md (one benchmark per table, BenchmarkE1..BenchmarkE8) plus
// micro-benchmarks of the hot building blocks. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report, besides ns/op, the headline metric of
// each experiment as a custom unit (e.g. E1 reports etob_steps and
// paxos_steps).
package repro

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/causal"
	"repro/internal/cht"
	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func reportCell(b *testing.B, t bench.Table, row, col int, unit string) {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return
	}
	if v, err := strconv.ParseFloat(t.Rows[row][col], 64); err == nil {
		b.ReportMetric(v, unit)
	}
}

// BenchmarkE1 regenerates the latency table (2 vs 3 communication steps).
func BenchmarkE1(b *testing.B) {
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.E1Latency(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
	reportCell(b, t, 0, 1, "etob_steps")
	reportCell(b, t, 1, 1, "paxos_steps")
}

// BenchmarkE2 regenerates the any-environment EC table.
func BenchmarkE2(b *testing.B) {
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.E2AnyEnvironment(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
	ok := 0.0
	for _, row := range t.Rows {
		if row[3] == "yes" {
			ok++
		}
	}
	b.ReportMetric(ok/float64(len(t.Rows)), "spec_ok_ratio")
}

// BenchmarkE3 regenerates the equivalence-transformation table.
func BenchmarkE3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E3Equivalence(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
}

// BenchmarkE4 regenerates the CHT extraction table.
func BenchmarkE4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E4Extraction(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
}

// BenchmarkE5 regenerates the Σ-gap table.
func BenchmarkE5(b *testing.B) {
	var t bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.E5SigmaGap(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
	reportCell(b, t, 0, 3, "etob_ops")
	reportCell(b, t, 1, 3, "paxos_majority_ops")
}

// BenchmarkE6 regenerates the stable-Ω strong-TOB table.
func BenchmarkE6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E6StableOmega(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
}

// BenchmarkE7 regenerates the causal-order-under-split table.
func BenchmarkE7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7CausalOrder(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
}

// BenchmarkE8 regenerates the EIC table.
func BenchmarkE8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E8EIC(bench.Options{Quick: true, Seed: int64(i + 1)})
	}
}

// --- Micro-benchmarks (ablations; DESIGN.md decisions 3–5) ---

// BenchmarkETOBThroughput measures simulated broadcasts/sec through the full
// Algorithm 5 stack on the deterministic kernel.
func BenchmarkETOBThroughput(b *testing.B) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := trace.NewRecorder(3)
		k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: int64(i)})
		k.SetObserver(rec)
		for m := 0; m < 20; m++ {
			k.ScheduleInput(model.ProcID(m%3+1), model.Time(10+5*m), model.BroadcastInput{ID: fmt.Sprintf("m%d", m)})
		}
		k.Run(4000)
	}
}

// BenchmarkECInstances measures Algorithm 4 instance throughput.
func BenchmarkECInstances(b *testing.B) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	driver := func(p model.ProcID, inst int) (string, bool) { return "v", inst <= 50 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.New(fp, det, ec.DrivenFactory(driver), sim.Options{Seed: int64(i)})
		k.Run(8000)
	}
}

// BenchmarkCausalExtend measures UpdatePromote (DESIGN.md decision 3): the
// deterministic topological extension, the hot path of Algorithm 5.
func BenchmarkCausalExtend(b *testing.B) {
	g := causal.New()
	var prefix []string
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("m%03d", i)
		var deps []string
		if i > 0 {
			deps = []string{fmt.Sprintf("m%03d", i-1)}
		}
		g.Add(id, deps)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := g.Extend(prefix)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 200 {
			b.Fatal("bad extend")
		}
	}
}

// BenchmarkCHTTreeBuild measures simulation-tree exploration (the reduction's
// dominant cost) on a 2-process, 2-instance DAG.
func BenchmarkCHTTreeBuild(b *testing.B) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaEventual(fp, 1, 35)
	g := cht.BuildDAG(fp, det, cht.BuildOptions{SamplesPerProcess: 4, Seed: 7})
	alg := cht.NewEC4(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := cht.NewExplorer(alg, 2, g, nil, 0)
		if err := ex.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelSteps measures raw kernel event throughput (ticks only).
func BenchmarkKernelSteps(b *testing.B) {
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaStable(fp, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: int64(i), TickInterval: 1})
		k.Run(2000)
	}
}
