// Command ecsim runs one simulated execution of a replication protocol under
// a chosen failure pattern and Ω behavior, prints each replica's delivered
// sequence over time, and property-checks the run against the (E)TOB
// specification.
//
// Examples:
//
//	ecsim                                  # 4 replicas, ETOB, split-brain Ω
//	ecsim -protocol paxos -n 5 -crash 5@0  # strong log with one crash
//	ecsim -protocol etob -pre selftrust -stab 2000 -msgs 12
//	ecsim -net partition -horizon 60000    # links partition at t=500, heal at 2500
//	ecsim -net jitter-spiky                # asymmetric links with latency spikes
//	ecsim -net lossy -retransmit           # drop ~15% of messages, restore
//	                                       # eventual delivery end-to-end
//	ecsim -net churn-fast -retransmit      # processes crash and rejoin on the
//	                                       # preset schedule (restart = state
//	                                       # reset); retransmission carries
//	                                       # traffic across down intervals
//	ecsim -net adversarial                 # divergence-maximizing scheduler
//	                                       # (blind rotating victim)
//	ecsim -net leader-starve               # protocol-aware scheduler: links
//	                                       # touching the current Omega leader
//	                                       # pinned at the delay bound
//	ecsim -net churn-lossy -retransmit     # composite preset: churn + ~15% loss
//	ecsim -net hostile -retransmit         # the full stack: leader starvation
//	                                       # over lossy links over churn
//
// The adversarial environment presets come from internal/sim/adversary;
// composite presets (adversary.Composite) name BOTH halves of an environment
// — a layered link stack built with sim.ComposeNetworks and a fault schedule
// — under one -net value. A lossy or churning environment violates the
// paper's eventual-delivery assumption on its own — run it raw to watch the
// property check fail, or with -retransmit to see convergence restored.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	_ "repro/internal/sim/adversary" // init registers the lossy/churn/adversarial/composite presets
	"repro/internal/tob"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n        = flag.Int("n", 4, "number of processes")
		protocol = flag.String("protocol", "etob", "etob | etobcommit | paxos | tobc (TOB from consensus)")
		pre      = flag.String("pre", "split", "omega pre-stabilization: stable | selftrust | split | rotating")
		stab     = flag.Int64("stab", 1500, "omega stabilization time")
		leader   = flag.Int("leader", 0, "eventual leader (0 = smallest correct)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		msgs     = flag.Int("msgs", 8, "number of broadcasts")
		horizon  = flag.Int64("horizon", 30000, "max simulated time")
		crashes  = flag.String("crash", "", "comma-separated crashes p@t, e.g. 3@500,4@0")
		network  = flag.String("net", "uniform", "network model preset: "+strings.Join(sim.PresetNames(), " | "))
		retrans  = flag.Bool("retransmit", false, "wrap the protocol in retransmit.Wrap (restores eventual delivery over lossy links and across churn)")
		verbose  = flag.Bool("v", false, "print every d_i snapshot")
	)
	flag.Parse()

	netFactory, err := sim.PresetFactory(*network)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecsim: %v\n", err)
		return 2
	}
	// Probe one instance so a bad flag combination is a diagnostic, not a
	// kernel panic; the kernel builds its own instance from the factory.
	if err := sim.ValidateNetwork(netFactory(), *n); err != nil {
		fmt.Fprintf(os.Stderr, "ecsim: -net %s with -n %d: %v\n", *network, *n, err)
		return 2
	}

	fp := model.NewFailurePattern(*n)
	if *crashes != "" {
		for _, c := range strings.Split(*crashes, ",") {
			parts := strings.SplitN(c, "@", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "ecsim: bad -crash entry %q (want p@t)\n", c)
				return 2
			}
			p, err1 := strconv.Atoi(parts[0])
			t, err2 := strconv.ParseInt(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "ecsim: bad -crash entry %q: %v %v\n", c, err1, err2)
				return 2
			}
			fp.Crash(model.ProcID(p), model.Time(t))
		}
	}

	spec := core.OmegaSpec{Leader: model.ProcID(*leader), Stabilization: model.Time(*stab)}
	switch *pre {
	case "stable":
		spec.Pre = core.PreStable
	case "selftrust":
		spec.Pre = core.PreSelfTrust
	case "split":
		spec.Pre = core.PreSplit
	case "rotating":
		spec.Pre = core.PreRotating
	default:
		fmt.Fprintf(os.Stderr, "ecsim: unknown -pre %q\n", *pre)
		return 2
	}
	det := spec.Build(fp)

	var factory model.AutomatonFactory
	switch *protocol {
	case "etob":
		factory = etob.Factory()
	case "etobcommit":
		factory = etob.CommitFactory() // §7 extension: committed-prefix indications
	case "paxos":
		factory = tob.PaxosLog(consensus.MajorityQuorums)
	case "tobc":
		factory = tob.FromConsensus(consensus.MajorityQuorums)
	default:
		fmt.Fprintf(os.Stderr, "ecsim: unknown -protocol %q\n", *protocol)
		return 2
	}

	if *retrans {
		factory = retransmit.Wrap(factory, retransmit.Options{Seed: *seed})
	}
	// Environment presets can carry a fault schedule (churn-*, churn-lossy,
	// hostile); the kernel then suspends and restarts processes on it. When
	// one is installed it is the kernel's ONLY liveness source, so -crash
	// entries are merged in through model.MergeFaults (down = down in either
	// half) — otherwise they would be silently ignored while the header
	// still printed them.
	var faults model.FaultModel
	if ff := sim.PresetFaults(*network); ff != nil {
		faults = ff(*n)
		if *crashes != "" {
			faults = model.MergeFaults(faults, fp)
		}
	}
	rec := trace.NewRecorder(*n)
	k := sim.New(fp, det, factory, sim.Options{Seed: *seed, Network: netFactory, Faults: faults})
	k.SetObserver(rec)
	var ids []string
	for i := 0; i < *msgs; i++ {
		at := model.Time(20 + 13*i)
		p := model.ProcID(i%*n + 1)
		if !fp.Alive(p, at) {
			p = fp.MinCorrect()
		}
		if faults != nil && !faults.Up(p, at) {
			// Under churn, submit to a process that is actually up. If the
			// schedule has EVERYONE down at this instant the input cannot be
			// submitted at all — say so instead of letting the kernel drop it
			// silently (the convergence predicate would then wait forever for
			// a broadcast that never happened).
			redirected := false
			for _, q := range model.Procs(*n) {
				if faults.Up(q, at) && fp.Alive(q, at) {
					p, redirected = q, true
					break
				}
			}
			if !redirected {
				fmt.Fprintf(os.Stderr, "ecsim: no process is up at t=%d; skipping broadcast m%02d\n", at, i)
				continue
			}
		}
		id := fmt.Sprintf("m%02d", i)
		ids = append(ids, id)
		k.ScheduleInput(p, at, model.BroadcastInput{ID: id})
	}
	k.RunUntil(model.Time(*horizon), func(k *sim.Kernel) bool {
		return k.Now() > model.Time(*stab)+200 && rec.AllDelivered(fp.Correct(), ids)
	})
	settle := k.Now()
	k.Run(settle + 500)

	fmt.Printf("run: n=%d protocol=%s omega=%s/stab=%d pattern=%v seed=%d net=%s\n",
		*n, *protocol, *pre, *stab, fp, *seed, *network)
	fmt.Printf("steps=%d messages=%d dropped=%d lost=%d finished_at=%d\n\n",
		k.Steps(), k.MessagesSent(), k.MessagesDropped(), k.MessagesLost(), k.Now())

	if *verbose {
		for _, p := range model.Procs(*n) {
			for _, pt := range rec.Seqs(p) {
				fmt.Printf("  %v d(%6d) = %v\n", p, pt.T, pt.Seq)
			}
		}
		fmt.Println()
	}
	for _, p := range model.Procs(*n) {
		status := ""
		if !fp.IsCorrect(p) {
			status = " (crashed)"
		}
		fmt.Printf("%v%s final: %v\n", p, status, rec.FinalSeq(p))
	}

	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settle})
	fmt.Println("\nproperty check:")
	fmt.Printf("  no-creation=%v no-duplication=%v validity=%v agreement=%v causal=%v\n",
		rep.NoCreation.OK, rep.NoDuplication.OK, rep.Validity.OK, rep.Agreement.OK, rep.CausalOrder.OK)
	fmt.Printf("  stability tau=%d total-order tau=%d => tau=%d strongTOB=%v\n",
		rep.StabilityTau, rep.TotalOrderTau, rep.Tau, rep.StrongTOB())
	for _, v := range [][]string{rep.NoCreation.Violations, rep.NoDuplication.Violations,
		rep.Validity.Violations, rep.Agreement.Violations, rep.CausalOrder.Violations} {
		for _, msg := range v {
			fmt.Printf("  violation: %s\n", msg)
		}
	}
	if *protocol == "etobcommit" {
		fmt.Println("\ncommitted prefixes (§7 extension):")
		for _, p := range fp.Correct() {
			auto := k.Automaton(p)
			if w, ok := auto.(*retransmit.Automaton); ok {
				auto = w.Inner()
			}
			a := auto.(*etob.CommitAutomaton)
			fmt.Printf("  %v committed %d/%d delivered\n", p, a.Committed(), len(rec.FinalSeq(p)))
		}
	}
	if !rep.OK() {
		return 1
	}
	return 0
}
