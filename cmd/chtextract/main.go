// Command chtextract demonstrates the paper's necessity direction (§4,
// Appendix B): it builds the failure-detector-sample DAG of the reduction's
// communication task (Figure 1), explores the induced simulation tree
// (Figure 2), locates k-bivalent vertices and decision gadgets (Figures 3–5),
// and runs the round-by-round leader extraction (Figure 6), printing the
// emulated Ω outputs as they stabilize.
//
// Examples:
//
//	chtextract                       # EC variant, eventual Ω, 4 rounds
//	chtextract -variant classical    # Appendix-B variant
//	chtextract -show dag             # print the DAG (Figure 1/2 material)
//	chtextract -show tree            # tree statistics and the first bivalent vertex
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cht"
	"repro/internal/fd"
	"repro/internal/model"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		variant = flag.String("variant", "ec", "ec | classical")
		omega   = flag.String("omega", "eventual", "stable | eventual")
		samples = flag.Int("samples", 3, "detector samples per process")
		rounds  = flag.Int("rounds", 4, "extraction growth rounds")
		seed    = flag.Int64("seed", 17, "PRNG seed")
		show    = flag.String("show", "", "dag | tree | gadget (extra detail)")
		crashAt = flag.Int64("crash", 0, "crash p1 at this time (0 = no crash)")
	)
	flag.Parse()

	const n = 2
	fp := model.NewFailurePattern(n)
	if *crashAt > 0 {
		fp.Crash(1, model.Time(*crashAt))
	}
	var det fd.Detector
	leader := fp.MinCorrect()
	if *omega == "stable" {
		det = fd.NewOmegaStable(fp, leader)
	} else {
		if fp.IsCorrect(2) {
			leader = 2
		}
		det = fd.NewOmegaEventual(fp, leader, 35)
	}

	var alg cht.Algorithm
	classical := *variant == "classical"
	if classical {
		alg = cht.NewEC4(1)
	} else {
		alg = cht.NewEC4(2)
	}

	fmt.Printf("reduction input: A=%s, D=%s, F=%v\n\n", alg.Name(), det.Name(), fp)

	g := cht.BuildDAG(fp, det, cht.BuildOptions{SamplesPerProcess: *samples, Seed: *seed})
	fmt.Printf("DAG (Figure 1): %d vertices", g.Len())
	if bad := g.CheckProperties(fp, det); len(bad) == 0 {
		fmt.Println(", properties (1)-(3) verified")
	} else {
		fmt.Printf(", PROPERTY VIOLATIONS: %v\n", bad)
		return 1
	}
	if *show == "dag" {
		fmt.Println(g.String())
	}

	if *show == "tree" || *show == "gadget" {
		ex := cht.NewExplorer(alg, n, g, nil, 0)
		if err := ex.Build(); err != nil {
			fmt.Fprintf(os.Stderr, "chtextract: %v\n", err)
			return 1
		}
		fmt.Printf("\nsimulation tree (Figure 2): %d nodes\n", ex.Len())
		nd, k, ok := ex.FirstBivalent()
		if !ok {
			fmt.Println("no k-bivalent vertex in this finite prefix (grow -samples)")
		} else {
			fmt.Printf("first k-bivalent vertex: instance k=%d (node order %d)\n", k, 0)
			if *show == "gadget" {
				if gd, found := ex.FindGadget(nd, k); found {
					fmt.Printf("decision gadget (Figures 3-5): %v\n", gd)
				} else {
					fmt.Println("no decision gadget in this finite prefix")
				}
			}
		}
	}

	fmt.Printf("\nextraction rounds (Figure 6):\n")
	rs, err := cht.EmulateOmega(alg, fp, det, cht.EmulateOptions{
		Rounds:      *rounds,
		Classical:   classical,
		BaseSamples: *samples,
		Build:       cht.BuildOptions{Seed: *seed},
		ViewLag:     1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chtextract: %v\n", err)
		return 1
	}
	for _, r := range rs {
		l, agreed := r.Agreed(fp.Correct())
		verdict := "diverged"
		if agreed {
			verdict = fmt.Sprintf("agreed on %v (correct=%v)", l, fp.IsCorrect(l))
		}
		fmt.Printf("  round %d (samples=%d, %6d tree nodes): ", r.Round, r.Samples, r.Nodes)
		for _, p := range fp.Correct() {
			fmt.Printf("%v->%v[%s] ", p, r.Outputs[p], r.Hows[p])
		}
		fmt.Printf("=> %s\n", verdict)
	}
	final := rs[len(rs)-1]
	l, agreed := final.Agreed(fp.Correct())
	if !agreed || !fp.IsCorrect(l) {
		fmt.Println("\nWARNING: extraction did not stabilize on a correct leader within the rounds")
		return 1
	}
	fmt.Printf("\nΩ emulated: all correct processes output %v permanently — Lemma 1 witnessed.\n", l)
	return 0
}
