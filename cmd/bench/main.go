// Command bench regenerates the experiment tables of EXPERIMENTS.md on the
// parallel sweep engine: each experiment decomposes into independent seeded
// cells that fan out across a bounded worker pool, and rows reassemble in
// deterministic order — the printed tables are byte-identical for any
// -parallel value.
//
// Usage:
//
//	bench                       # run all experiments (E1..E9), print tables
//	bench -exp e5               # run one experiment
//	bench -quick                # smaller workloads
//	bench -seed 7               # change the base seed
//	bench -parallel 4           # worker-pool size (default GOMAXPROCS)
//	bench -json BENCH_2.json    # also write the machine-readable report
//	bench -json BENCH_2.json -scaling 1,2,4,8
//	                            # additionally rerun the suite per worker
//	                            # count and record the wall-time scaling
//
// The -json report (schema "repro-bench/1", see internal/bench.Report)
// records per-experiment wall time, kernel steps/sec, the kernel
// microbenchmarks (ns/op, allocs/op), and the optional scaling sweep.
// Progress notes for the extra passes go to stderr; stdout carries only the
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id ("+strings.Join(bench.IDs(), ", ")+"); empty = all")
	quick := flag.Bool("quick", false, "smaller workloads")
	seed := flag.Int64("seed", 42, "base PRNG seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker-pool size (1 = serial, <=0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a machine-readable report (BENCH_<n>.json) to this path")
	scaling := flag.String("scaling", "", "comma-separated worker counts to sweep for the -json scaling section, e.g. 1,2,8")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seed: *seed}
	var ids []string
	if *exp != "" {
		ids = []string{*exp}
	}
	runner := bench.Runner{Opts: opts, Parallel: *parallel}
	start := time.Now()
	results, err := runner.Run(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err) // the registry error already names the valid IDs
		return 2
	}
	wall := time.Since(start)
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.Table.Format())
	}

	if *jsonPath == "" {
		if *scaling != "" {
			fmt.Fprintln(os.Stderr, "bench: -scaling requires -json")
			return 2
		}
		return 0
	}
	report := bench.NewReport(opts, *parallel, results, wall)
	if *scaling != "" {
		points, err := scalingSweep(runner, ids, *scaling)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 2
		}
		report.AddScaling(points)
	}
	fmt.Fprintln(os.Stderr, "bench: running kernel microbenchmarks")
	report.Micro = bench.Microbenchmarks(*quick)
	if err := report.WriteFile(*jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *jsonPath)
	return 0
}

// scalingSweep reruns the selected experiments once per worker count and
// measures the suite wall time.
func scalingSweep(base bench.Runner, ids []string, spec string) ([]bench.ScalingPoint, error) {
	var points []bench.ScalingPoint
	for _, s := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -scaling entry %q (want positive integers)", s)
		}
		fmt.Fprintf(os.Stderr, "bench: scaling sweep with %d workers\n", w)
		r := bench.Runner{Opts: base.Opts, Parallel: w}
		start := time.Now()
		if _, err := r.Run(ids); err != nil {
			return nil, err
		}
		points = append(points, bench.ScalingPoint{Workers: w, WallMS: float64(time.Since(start).Nanoseconds()) / 1e6})
	}
	return points, nil
}
