// Command bench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	bench              # run all experiments (E1..E9), print tables
//	bench -exp e5      # run one experiment
//	bench -quick       # smaller workloads
//	bench -seed 7      # change the base seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id (e1..e9); empty = all")
	quick := flag.Bool("quick", false, "smaller workloads")
	seed := flag.Int64("seed", 42, "base PRNG seed")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seed: *seed}
	var tables []bench.Table
	if *exp == "" {
		tables = bench.All(opts)
	} else {
		t, ok := bench.ByID(*exp, opts)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (want e1..e9)\n", *exp)
			return 2
		}
		tables = []bench.Table{t}
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
	return 0
}
