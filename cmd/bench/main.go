// Command bench regenerates the experiment tables of EXPERIMENTS.md on the
// parallel sweep engine: each experiment decomposes into independent seeded
// cells that fan out across a bounded worker pool, and rows reassemble in
// deterministic order — the printed tables are byte-identical for any
// -parallel value.
//
// Usage:
//
//	bench                       # run all experiments (E1..E14), print tables
//	bench -exp e5               # run one experiment
//	bench -quick                # smaller workloads
//	bench -seed 7               # change the base seed
//	bench -parallel 4           # worker-pool size (default GOMAXPROCS)
//	bench -cell-timeout 2m      # abandon any cell that runs longer (a
//	                            # divergent run cannot hang the table; the
//	                            # cell's rows become a TIMEOUT marker)
//	bench -shard 0/2            # run only this shard's cells (deterministic
//	                            # partition for multi-machine sweeps; shards
//	                            # 0/2 and 1/2 together cover every cell
//	                            # exactly once)
//	bench -repeat 5             # time every cell as the median of 5 runs
//	                            # (rows are deterministic and printed once;
//	                            # only the recorded timings steady; the
//	                            # max−min spread per cell lands in the
//	                            # report's spread_ms column)
//	bench -json BENCH_6.json    # also write the machine-readable report
//	bench -json BENCH_6.json -scaling 1,2,4,8
//	                            # additionally rerun the suite per worker
//	                            # count and record the wall-time scaling
//	bench -json BENCH_6.json -latency
//	                            # additionally run the open-loop latency
//	                            # sweep (presets × batch configs) into the
//	                            # report's "latency" section
//	bench -latency-presets uniform,lossy
//	                            # restrict the sweep's environment axis
//	bench -json BENCH_6.json -latency-only
//	                            # ONLY the latency sweep — skip the
//	                            # experiment tables (CI latency smoke)
//	bench -json BENCH_8.json -scalen 5,16,64,256
//	                            # additionally run the En cluster-size sweep
//	                            # (the same ETOB workload at each n, all-to-all
//	                            # vs gossip dissemination) into the report's
//	                            # "scaling_n" section
//	bench -json BENCH_7.json -metrics
//	                            # additionally rerun the suite with the obs
//	                            # metrics registry attached to every cell's
//	                            # kernel and record the on/off overhead
//	                            # comparison in the report's "metrics"
//	                            # section (errors if observation changes
//	                            # any table row)
//	bench -profile cpu          # write cpu.pprof (or mem.pprof) covering
//	bench -profile mem          # the experiment run; -profile-dir sets
//	                            # where the profile lands (default ".")
//
// The -json report (schema "repro-bench/6", see internal/bench.Report)
// records per-experiment wall time (median-of-(-repeat) per cell) with its
// run-to-run spread, kernel steps/sec, the kernel and CHT microbenchmarks
// (ns/op, allocs/op), the optional scaling sweep, the optional open-loop
// latency sweep (p50/p99/p999 visibility and order-stability latency per
// network preset × batch config; see internal/loadgen), and the optional
// metrics-on/off overhead audit (see internal/bench.MetricsCompare).
// Progress notes for the extra passes go to stderr; stdout carries only the
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id ("+strings.Join(bench.IDs(), ", ")+"); empty = all")
	quick := flag.Bool("quick", false, "smaller workloads")
	seed := flag.Int64("seed", 42, "base PRNG seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker-pool size (1 = serial, <=0 = GOMAXPROCS)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell execution bound; a cell exceeding it is abandoned with a TIMEOUT row (0 = unbounded)")
	shard := flag.String("shard", "", "run only shard i of n cells, as \"i/n\" (deterministic partition for multi-machine sweeps)")
	repeat := flag.Int("repeat", 1, "run every cell N times and record the median cell time (tames single-core noise)")
	jsonPath := flag.String("json", "", "write a machine-readable report (BENCH_<n>.json) to this path")
	scaling := flag.String("scaling", "", "comma-separated worker counts to sweep for the -json scaling section, e.g. 1,2,8")
	scaleN := flag.String("scalen", "", "comma-separated cluster sizes for the -json scaling_n section (En experiment), e.g. 5,16,64,256")
	latency := flag.Bool("latency", false, "run the open-loop latency sweep into the -json report's latency section")
	latencyPresets := flag.String("latency-presets", "", "comma-separated network presets for the latency sweep (default uniform,lossy,hostile)")
	latencyOnly := flag.Bool("latency-only", false, "run ONLY the latency sweep, skipping the experiment tables (implies -latency; requires -json)")
	metrics := flag.Bool("metrics", false, "rerun the suite with the obs metrics registry on and record the overhead comparison in the -json report's metrics section")
	profileKind := flag.String("profile", "", "write a pprof profile of the experiment run: cpu or mem")
	profileDir := flag.String("profile-dir", ".", "directory for -profile output (cpu.pprof / mem.pprof)")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seed: *seed}
	var ids []string
	if *exp != "" {
		ids = []string{*exp}
	}
	sh, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	if sh.Count > 1 {
		fmt.Fprintf(os.Stderr, "bench: running shard %d/%d (tables are partial; reassemble with the other shards)\n", sh.Index, sh.Count)
	}
	wantLatency := *latency || *latencyOnly
	if *jsonPath == "" && (*scaling != "" || *scaleN != "" || wantLatency || *metrics) {
		fmt.Fprintln(os.Stderr, "bench: -scaling/-scalen/-latency/-metrics require -json")
		return 2
	}
	if *metrics && *latencyOnly {
		fmt.Fprintln(os.Stderr, "bench: -metrics needs the experiment tables; drop -latency-only")
		return 2
	}
	stopProfile, err := startProfile(*profileKind, *profileDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	defer func() {
		if perr := stopProfile(); perr != nil {
			fmt.Fprintf(os.Stderr, "bench: profile: %v\n", perr)
		}
	}()

	runner := bench.Runner{Opts: opts, Parallel: *parallel, CellTimeout: *cellTimeout, Shard: sh, Repeat: *repeat}
	start := time.Now()
	var results []bench.Result
	if !*latencyOnly {
		results, err = runner.Run(ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err) // the registry error already names the valid IDs
			return 2
		}
	}
	wall := time.Since(start)
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.Table.Format())
	}

	if *jsonPath == "" {
		return 0
	}
	report := bench.NewReport(opts, *parallel, *repeat, results, wall)
	if *scaling != "" {
		points, err := scalingSweep(runner, ids, *scaling)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 2
		}
		report.AddScaling(points)
	}
	if *scaleN != "" {
		var ns []int
		for _, s := range strings.Split(*scaleN, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "bench: bad -scalen entry %q (want integers >= 2)\n", s)
				return 2
			}
			ns = append(ns, n)
		}
		fmt.Fprintf(os.Stderr, "bench: running En cluster-size sweep at n = %s\n", *scaleN)
		report.ScalingN = bench.ScaleN(ns, *quick, *seed)
		for _, r := range report.ScalingN {
			fmt.Fprintf(os.Stderr, "bench:   n=%-4d %-10s fanout %-3d %8.1f env/op %10.0f bytes/proc %9.0f steps/s %5.1f%% delivered\n",
				r.N, r.Mode, r.SendFanout, r.EnvPerOp, r.BytesPerProc, r.StepsPerSec, r.DeliveredPct)
		}
	}
	if wantLatency {
		var presets []string
		if *latencyPresets != "" {
			for _, p := range strings.Split(*latencyPresets, ",") {
				presets = append(presets, strings.TrimSpace(p))
			}
		}
		fmt.Fprintln(os.Stderr, "bench: running open-loop latency sweep")
		lat, err := bench.LatencySweep(*quick, *seed, presets)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		report.Latency = lat
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "bench: running metrics-on/off overhead comparison")
		mres, err := bench.MetricsCompare(runner, ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		report.AddMetrics(mres)
	}
	if !*latencyOnly {
		fmt.Fprintln(os.Stderr, "bench: running kernel microbenchmarks")
		report.Micro = bench.Microbenchmarks(*quick)
	}
	if err := report.WriteFile(*jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *jsonPath)
	return 0
}

// startProfile begins the requested pprof capture and returns a stop function
// to call when the run is over. kind "" is a no-op; "cpu" records the whole
// run into cpu.pprof; "mem" snapshots the heap at the end into mem.pprof.
func startProfile(kind, dir string) (func() error, error) {
	switch kind {
	case "":
		return func() error { return nil }, nil
	case "cpu":
		f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() error {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "bench: cpu profile written to %s\n", f.Name())
			return f.Close()
		}, nil
	case "mem":
		path := filepath.Join(dir, "mem.pprof")
		return func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			fmt.Fprintf(os.Stderr, "bench: heap profile written to %s\n", path)
			return pprof.WriteHeapProfile(f)
		}, nil
	default:
		return nil, fmt.Errorf("bad -profile %q (want cpu or mem)", kind)
	}
}

// parseShard parses the -shard "i/n" syntax; empty means no sharding.
func parseShard(spec string) (bench.Shard, error) {
	if spec == "" {
		return bench.Shard{}, nil
	}
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		return bench.Shard{}, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/2)", spec)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return bench.Shard{}, fmt.Errorf("bad -shard %q (want i/n with 0 <= i < n)", spec)
	}
	return bench.Shard{Index: i, Count: n}, nil
}

// scalingSweep reruns the selected experiments once per worker count and
// measures the suite wall time.
func scalingSweep(base bench.Runner, ids []string, spec string) ([]bench.ScalingPoint, error) {
	var points []bench.ScalingPoint
	for _, s := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -scaling entry %q (want positive integers)", s)
		}
		fmt.Fprintf(os.Stderr, "bench: scaling sweep with %d workers\n", w)
		// Deliberately not inheriting Repeat (or CellTimeout/Shard): a scaling
		// point records one wall time, so repetitions would only multiply work.
		r := bench.Runner{Opts: base.Opts, Parallel: w}
		start := time.Now()
		if _, err := r.Run(ids); err != nil {
			return nil, err
		}
		points = append(points, bench.ScalingPoint{Workers: w, WallMS: float64(time.Since(start).Nanoseconds()) / 1e6})
	}
	return points, nil
}
