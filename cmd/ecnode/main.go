// Command ecnode runs the deployable service plane of the reproduction: the
// eventually consistent replicated service as real OS processes.
//
// Replica mode (default) boots one replica node (internal/node): the
// retransmit-wrapped ETOB stack over TCP, heartbeat Ω, HTTP API.
//
//	ecnode -id 1 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003 \
//	       -http 127.0.0.1:8081 -front http://127.0.0.1:8080
//
// Front-door mode (-front-door) boots the load balancer (internal/lb):
//
//	ecnode -front-door -http 127.0.0.1:8080
//
// Both modes shut down gracefully on SIGINT/SIGTERM: a replica deregisters
// from its front door and drains in-flight HTTP before stopping its event
// loop, so rolling restarts cost clients nothing.
//
// Chaos mode wraps a replica's transport in the seeded live fault injector
// (runtime.FaultTransport): -chaos names a preset from the injector's
// vocabulary (lossy, lossy-burst, resets, hostile) and -chaos-seed pins its
// deterministic fault schedule, so a whole cluster of ecnode processes can
// soak under reproducible network hostility:
//
//	ecnode -id 1 -peers ... -chaos lossy -chaos-seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/runtime"
	"repro/internal/smr"
)

func main() {
	var (
		frontDoor   = flag.Bool("front-door", false, "run the load-balancing front door instead of a replica")
		id          = flag.Int("id", 0, "replica ID (1..n)")
		peersFlag   = flag.String("peers", "", "replica transport mesh: id=host:port,... (every replica, self included)")
		httpAddr    = flag.String("http", "127.0.0.1:0", "HTTP listen address")
		front       = flag.String("front", "", "front door base URL to register with (replica mode)")
		consistency = flag.String("consistency", "eventual", "eventual|strong")
		machine     = flag.String("machine", "kv", "kv|counter")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		chaos       = flag.String("chaos", "", "fault-injection preset for the replica transport ("+strings.Join(runtime.FaultPresetNames(), "|")+")")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed pinning the chaos preset's deterministic fault schedule")
	)
	flag.Parse()

	if *frontDoor {
		runFront(*httpAddr)
		return
	}
	runReplica(*id, *peersFlag, *httpAddr, *front, *consistency, *machine, *drainWait, *chaos, *chaosSeed)
}

func runFront(addr string) {
	f, err := lb.New(lb.Config{Addr: addr, Logf: log.Printf})
	if err != nil {
		log.Fatalf("front door: %v", err)
	}
	log.Printf("front door serving on %s", f.URL())
	waitForSignal()
	log.Printf("front door: shutting down")
	f.Close()
}

func runReplica(id int, peersFlag, httpAddr, front, consistency, machine string, drain time.Duration, chaos string, chaosSeed int64) {
	if id < 1 {
		log.Fatal("replica mode needs -id >= 1")
	}
	peers, err := parsePeers(peersFlag)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}
	var fault *runtime.FaultConfig
	if chaos != "" {
		fc, ok := runtime.FaultPreset(chaos, chaosSeed)
		if !ok {
			log.Fatalf("unknown -chaos preset %q (have: %s)", chaos, strings.Join(runtime.FaultPresetNames(), ", "))
		}
		fault = &fc
	}
	var level core.Consistency
	switch consistency {
	case "eventual", "":
		level = core.Eventual
	case "strong":
		level = core.Strong
	default:
		log.Fatalf("unknown -consistency %q (eventual|strong)", consistency)
	}
	var factory smr.MachineFactory
	switch machine {
	case "kv", "":
		factory = smr.KVFactory
	case "counter":
		factory = smr.CounterFactory
	default:
		log.Fatalf("unknown -machine %q (kv|counter)", machine)
	}
	n, err := node.New(node.Config{
		ID:          model.ProcID(id),
		Peers:       peers,
		HTTPAddr:    httpAddr,
		Front:       front,
		Consistency: level,
		Machine:     factory,
		Fault:       fault,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatalf("replica %d: %v", id, err)
	}
	log.Printf("replica %d serving HTTP on %s (transport %s)", id, n.URL(), peers[model.ProcID(id)])
	waitForSignal()
	log.Printf("replica %d: draining and shutting down", id)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := n.Shutdown(ctx); err != nil {
		log.Printf("replica %d: shutdown: %v", id, err)
		os.Exit(1)
	}
}

// parsePeers parses "1=host:port,2=host:port,...".
func parsePeers(s string) (map[model.ProcID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -peers")
	}
	peers := make(map[model.ProcID]string)
	for _, part := range strings.Split(s, ",") {
		idStr, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=host:port", part)
		}
		pid, err := strconv.Atoi(idStr)
		if err != nil || pid < 1 {
			return nil, fmt.Errorf("bad replica ID %q", idStr)
		}
		if _, dup := peers[model.ProcID(pid)]; dup {
			return nil, fmt.Errorf("replica %d listed twice", pid)
		}
		peers[model.ProcID(pid)] = addr
	}
	return peers, nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
